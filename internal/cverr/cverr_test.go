package cverr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// wrapError is a custom wrapper type for exercising errors.As across a chain
// that also contains fmt.Errorf wrapping.
type wrapError struct {
	code  int
	cause error
}

func (e *wrapError) Error() string { return fmt.Sprintf("wrap(%d): %v", e.code, e.cause) }
func (e *wrapError) Unwrap() error { return e.cause }

func TestEverySentinelIsRegistered(t *testing.T) {
	// The registry is the source of truth for Name; every sentinel defined in
	// this package must be in it exactly once, with a plausible identifier
	// and a distinct message.
	if len(named) == 0 {
		t.Fatal("no sentinels registered")
	}
	seenNames := make(map[string]bool)
	seenMsgs := make(map[string]bool)
	for _, entry := range named {
		if entry.err == nil {
			t.Fatalf("registered sentinel %q is nil", entry.name)
		}
		if !strings.HasPrefix(entry.name, "Err") {
			t.Errorf("sentinel name %q does not start with Err", entry.name)
		}
		if seenNames[entry.name] {
			t.Errorf("sentinel name %q registered twice", entry.name)
		}
		seenNames[entry.name] = true
		msg := entry.err.Error()
		if !strings.HasPrefix(msg, "crowdval: ") {
			t.Errorf("sentinel %s message %q lacks the crowdval prefix", entry.name, msg)
		}
		if seenMsgs[msg] {
			t.Errorf("sentinel %s reuses the message %q", entry.name, msg)
		}
		seenMsgs[msg] = true
	}
}

func TestNameForEveryExportedSentinel(t *testing.T) {
	// Pin the full public taxonomy: every exported sentinel maps to its own
	// identifier, bare and however deeply wrapped. A sentinel missing here
	// means the exported set and the registry drifted apart.
	cases := map[string]error{
		"ErrNilAnswerSet":      ErrNilAnswerSet,
		"ErrNilValidation":     ErrNilValidation,
		"ErrOutOfRange":        ErrOutOfRange,
		"ErrInvalidLabel":      ErrInvalidLabel,
		"ErrDimensionMismatch": ErrDimensionMismatch,
		"ErrRaggedMatrix":      ErrRaggedMatrix,
		"ErrSessionDone":       ErrSessionDone,
		"ErrBudgetExhausted":   ErrBudgetExhausted,
		"ErrAlreadyValidated":  ErrAlreadyValidated,
		"ErrNotValidated":      ErrNotValidated,
		"ErrUnknownStrategy":   ErrUnknownStrategy,
		"ErrNoCandidates":      ErrNoCandidates,
		"ErrNilExpert":         ErrNilExpert,
		"ErrNoGroundTruth":     ErrNoGroundTruth,
		"ErrBadSnapshot":       ErrBadSnapshot,
		"ErrSnapshotVersion":   ErrSnapshotVersion,
		"ErrSessionNotFound":   ErrSessionNotFound,
		"ErrSessionExists":     ErrSessionExists,
		"ErrOverloaded":        ErrOverloaded,
		"ErrNotOwner":          ErrNotOwner,
		"ErrDegraded":          ErrDegraded,
		"ErrBadWAL":            ErrBadWAL,
	}
	if len(cases) != len(named) {
		t.Fatalf("test covers %d sentinels, registry has %d — keep them in sync", len(cases), len(named))
	}
	for name, err := range cases {
		if got := Name(err); got != name {
			t.Errorf("Name(%s) = %q", name, got)
		}
		wrapped := fmt.Errorf("layer two: %w", fmt.Errorf("layer one: %w", err))
		if got := Name(wrapped); got != name {
			t.Errorf("Name(wrapped %s) = %q", name, got)
		}
	}
}

func TestNameNonSentinels(t *testing.T) {
	if got := Name(nil); got != "" {
		t.Errorf("Name(nil) = %q", got)
	}
	if got := Name(errors.New("unrelated")); got != "" {
		t.Errorf("Name(unrelated) = %q", got)
	}
	if got := Name(fmt.Errorf("wrapping nothing special: %w", errors.New("inner"))); got != "" {
		t.Errorf("Name(wrapped unrelated) = %q", got)
	}
}

func TestIsAndAsThroughMixedChains(t *testing.T) {
	// A chain mixing fmt.Errorf wrapping with a custom Unwrap type: errors.Is
	// still finds the sentinel at the bottom, errors.As still finds the
	// custom type in the middle, and Name reads through the whole stack.
	chain := fmt.Errorf("handler: %w", &wrapError{code: 42,
		cause: fmt.Errorf("engine: %w", ErrBudgetExhausted)})

	if !errors.Is(chain, ErrBudgetExhausted) {
		t.Fatal("errors.Is does not reach the sentinel through the chain")
	}
	if errors.Is(chain, ErrSessionDone) {
		t.Fatal("errors.Is matches an unrelated sentinel")
	}
	var wrap *wrapError
	if !errors.As(chain, &wrap) {
		t.Fatal("errors.As does not find the custom wrapper")
	}
	if wrap.code != 42 {
		t.Fatalf("errors.As found the wrong wrapper: %+v", wrap)
	}
	if got := Name(chain); got != "ErrBudgetExhausted" {
		t.Fatalf("Name(chain) = %q", got)
	}

	// Unwrap walks the chain layer by layer down to the sentinel.
	depth := 0
	for err := error(chain); err != nil; err = errors.Unwrap(err) {
		depth++
		if depth > 10 {
			t.Fatal("unwrap chain does not terminate")
		}
		if err == ErrBudgetExhausted && errors.Unwrap(err) != nil {
			t.Fatal("the sentinel itself must be the chain's end")
		}
	}
	if depth != 4 { // chain → wrapError → engine wrap → sentinel
		t.Fatalf("unwrap depth = %d, want 4", depth)
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	// No sentinel matches any other: errors.Is relationships between
	// different sentinels would silently merge error-handling branches.
	for i, a := range named {
		for j, b := range named {
			if (i == j) != errors.Is(a.err, b.err) {
				t.Errorf("errors.Is(%s, %s) = %v", a.name, b.name, i != j)
			}
		}
	}
}
