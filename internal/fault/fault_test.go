package fault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// memSink is an in-memory Sink recording writes and syncs.
type memSink struct {
	buf   bytes.Buffer
	syncs int
}

func (m *memSink) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memSink) Sync() error                 { m.syncs++; return nil }

func TestNilInjectorIsTransparent(t *testing.T) {
	var in *Injector
	m := &memSink{}
	if got := in.WrapFile("x", m); got != Sink(m) {
		t.Fatalf("nil injector wrapped the sink")
	}
	in.Arm(Rule{Op: OpWrite, Err: ErrIO})
	in.Clear()
	if in.Injected() != 0 {
		t.Fatalf("nil injector reported injections")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := in.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); err != nil {
		t.Fatalf("nil injector rename: %v", err)
	}
	f, err := in.OpenFile(filepath.Join(dir, "b"), os.O_RDONLY, 0)
	if err != nil {
		t.Fatalf("nil injector open: %v", err)
	}
	f.Close()
}

func TestSentinelsMatchSyscallErrors(t *testing.T) {
	if !errors.Is(ErrNoSpace, syscall.ENOSPC) {
		t.Fatalf("ErrNoSpace does not wrap ENOSPC")
	}
	if !errors.Is(ErrIO, syscall.EIO) {
		t.Fatalf("ErrIO does not wrap EIO")
	}
}

func TestSkipAndCountWindows(t *testing.T) {
	in := NewInjector(Rule{Op: OpSync, Skip: 2, Count: 1, Err: ErrIO})
	m := &memSink{}
	f := in.WrapFile("wal", m)
	for i := 0; i < 2; i++ {
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %d inside skip window failed: %v", i, err)
		}
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("third sync: got %v, want EIO", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after count exhausted failed: %v", err)
	}
	if got := in.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

func TestMatchFiltersByPath(t *testing.T) {
	in := NewInjector(Rule{Op: OpWrite, Match: "wal", Err: ErrNoSpace})
	other := in.WrapFile("checkpoint.tmp", &memSink{})
	if _, err := other.Write([]byte("ok")); err != nil {
		t.Fatalf("non-matching path faulted: %v", err)
	}
	target := in.WrapFile("sessions/a.wal", &memSink{})
	if _, err := target.Write([]byte("no")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("matching path: got %v, want ENOSPC", err)
	}
}

func TestShortWriteTearsBuffer(t *testing.T) {
	in := NewInjector(Rule{Op: OpWrite, ShortBy: 3})
	m := &memSink{}
	f := in.WrapFile("wal", m)
	n, err := f.Write([]byte("abcdefgh"))
	if n != 5 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn write: n=%d err=%v, want 5, EIO", n, err)
	}
	if got := m.buf.String(); got != "abcde" {
		t.Fatalf("sink holds %q, want prefix abcde", got)
	}
	// ShortBy larger than the buffer floors at zero bytes written.
	in2 := NewInjector(Rule{Op: OpWrite, ShortBy: 100, Err: ErrNoSpace})
	m2 := &memSink{}
	n, err = in2.WrapFile("wal", m2).Write([]byte("xy"))
	if n != 0 || !errors.Is(err, syscall.ENOSPC) || m2.buf.Len() != 0 {
		t.Fatalf("oversized tear: n=%d err=%v len=%d", n, err, m2.buf.Len())
	}
}

func TestLatencyOnlyRuleDelaysWithoutFailing(t *testing.T) {
	in := NewInjector(Rule{Op: OpWrite, Latency: 5 * time.Millisecond})
	m := &memSink{}
	start := time.Now()
	if _, err := in.WrapFile("wal", m).Write([]byte("ok")); err != nil {
		t.Fatalf("latency-only rule failed the write: %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatalf("write returned before the injected latency elapsed")
	}
	if m.buf.String() != "ok" {
		t.Fatalf("delayed write lost data: %q", m.buf.String())
	}
}

func TestRenameAndOpenFaults(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "state.ckpt.tmp")
	dst := filepath.Join(dir, "state.ckpt")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(
		Rule{Op: OpRename, Match: ".ckpt", Count: 1, Err: ErrIO},
		Rule{Op: OpOpen, Match: "state.ckpt", Count: 1, Err: ErrNoSpace},
	)
	if err := in.Rename(src, dst); !errors.Is(err, syscall.EIO) {
		t.Fatalf("faulted rename: got %v, want EIO", err)
	}
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("faulted rename moved the file: %v", err)
	}
	if err := in.Rename(src, dst); err != nil {
		t.Fatalf("rename after count exhausted: %v", err)
	}
	if _, err := in.OpenFile(dst, os.O_RDONLY, 0); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("faulted open: got %v, want ENOSPC", err)
	}
	f, err := in.OpenFile(dst, os.O_RDONLY, 0)
	if err != nil {
		t.Fatalf("open after count exhausted: %v", err)
	}
	f.Close()
	if err := in.Rename(filepath.Join(dir, "missing"), dst); err == nil {
		t.Fatalf("rename of missing file succeeded")
	}
}

func TestClearStopsInjection(t *testing.T) {
	in := NewInjector(Rule{Op: OpSync, Err: ErrIO})
	f := in.WrapFile("wal", &memSink{})
	if err := f.Sync(); err == nil {
		t.Fatalf("armed rule did not fire")
	}
	in.Clear()
	if err := f.Sync(); err != nil {
		t.Fatalf("cleared injector still fired: %v", err)
	}
}

func TestBudgetFileTearsAtExhaustion(t *testing.T) {
	b := NewBudget(5)
	m := &memSink{}
	f := &BudgetFile{F: m, Budget: b}
	if n, err := f.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("within-budget write: n=%d err=%v", n, err)
	}
	n, err := f.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write: n=%d err=%v, want 2, ErrCrashed", n, err)
	}
	if !b.Tripped() {
		t.Fatalf("budget not tripped after exhaustion")
	}
	if m.buf.String() != "abcde" {
		t.Fatalf("sink holds %q, want torn prefix abcde", m.buf.String())
	}
	if n, err := f.Write([]byte("x")); n != 0 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: n=%d err=%v", n, err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
}

func TestBudgetFileSyncsWhileAlive(t *testing.T) {
	m := &memSink{}
	f := &BudgetFile{F: m, Budget: NewBudget(100)}
	if err := f.Sync(); err != nil || m.syncs != 1 {
		t.Fatalf("live sync: err=%v syncs=%d", err, m.syncs)
	}
}

func TestSharedBudgetAcrossFiles(t *testing.T) {
	b := NewBudget(4)
	f1 := &BudgetFile{F: &memSink{}, Budget: b}
	f2 := &BudgetFile{F: &memSink{}, Budget: b}
	if _, err := f1.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if n, err := f2.Write([]byte("yz")); n != 1 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("shared budget: n=%d err=%v, want 1, ErrCrashed", n, err)
	}
}

func TestTransportPartitionAndHeal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	}))
	defer srv.Close()
	in := NewInjector(Rule{Op: OpDial, Match: srv.Listener.Addr().String(), Err: syscall.ECONNRESET})
	client := &http.Client{Transport: &Transport{Injector: in}}
	if _, err := client.Get(srv.URL); err == nil || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("partitioned request: got %v, want ECONNRESET", err)
	}
	in.Clear()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("healed request failed: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("healed response body %q", body)
	}
}

func TestTransportSlowPeerHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	in := NewInjector(Rule{Op: OpDial, Latency: time.Minute})
	client := &http.Client{Transport: &Transport{Injector: in}, Timeout: 20 * time.Millisecond}
	start := time.Now()
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatalf("slow-peer request succeeded before latency elapsed")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("slow-peer request ignored the client timeout")
	}
}

func TestTransportPassthroughWithNilInjector(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	client := &http.Client{Transport: &Transport{}}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("nil-injector transport failed: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
