// Package fault injects disk and network faults behind the narrow
// interfaces the durability and cluster layers already use, so the same
// injector drives unit tests, the kill-at-every-byte crash harness, and
// the chaos harness.
//
// The design splits deterministic *rules* from the wrapping seams:
//
//   - An Injector holds an ordered list of Rules. Each I/O operation that
//     passes through a wrapped seam (file write, fsync, rename, open, or
//     network dial) consults the injector; the first matching rule decides
//     whether the operation fails, is shortened, or is delayed. Rules fire
//     deterministically — Skip and Count make "fail the third fsync of the
//     checkpoint file" expressible without randomness. Randomness, when a
//     chaos schedule wants it, lives in the test that builds the rules from
//     a seeded source, so every run is replayable from its seed.
//
//   - WrapFile/Rename/OpenFile/Transport are the seams. A nil *Injector is
//     valid everywhere and injects nothing, so production call sites can
//     thread an injector unconditionally and pay only a nil check.
//
// The package also carries the crash-harness budget fault (Budget /
// BudgetFile in budget.go): a byte-budget file that tears the write that
// exhausts it and fails everything after, which is the primitive behind
// the kill-at-every-byte recovery tests.
package fault

import (
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
	"time"
)

// Sentinel errors for the two disk failures operators actually meet. Both
// wrap the corresponding syscall errno, so errors.Is(err, syscall.ENOSPC)
// works on injected faults exactly as it does on real ones — the ENOSPC
// reclaim path in the server cannot tell the difference, which is the
// point.
var (
	// ErrNoSpace is an injected disk-full failure. errors.Is(ErrNoSpace,
	// syscall.ENOSPC) is true.
	ErrNoSpace = fmt.Errorf("fault: injected disk full: %w", syscall.ENOSPC)

	// ErrIO is an injected generic I/O failure. errors.Is(ErrIO,
	// syscall.EIO) is true.
	ErrIO = fmt.Errorf("fault: injected i/o error: %w", syscall.EIO)
)

// Op names the operation class a rule applies to.
type Op string

const (
	// OpWrite matches file data writes through WrapFile.
	OpWrite Op = "write"
	// OpSync matches fsync calls through WrapFile.
	OpSync Op = "sync"
	// OpRename matches Rename calls.
	OpRename Op = "rename"
	// OpOpen matches OpenFile calls.
	OpOpen Op = "open"
	// OpDial matches outbound HTTP requests through Transport, keyed on
	// the target host.
	OpDial Op = "dial"
)

// Rule describes one fault. Zero values are permissive: an empty Match
// matches every path/host, Skip 0 fires immediately, Count <= 0 fires
// forever once reached.
type Rule struct {
	// Op selects the operation class the rule applies to.
	Op Op
	// Match is a substring the operation's path (or host, for OpDial)
	// must contain. Empty matches everything.
	Match string
	// Skip lets this many matching operations through before firing.
	Skip int
	// Count limits how many operations the rule fires on once armed;
	// <= 0 means it keeps firing until cleared.
	Count int
	// Err is returned by the faulted operation. For OpWrite with a
	// non-zero ShortBy the write is torn first (see ShortBy). A nil Err
	// with a non-zero Latency delays without failing.
	Err error
	// ShortBy tears an OpWrite: the wrapped file writes len(p)-ShortBy
	// bytes (floored at zero) and then returns Err (or ErrIO if Err is
	// nil). Ignored for other ops.
	ShortBy int
	// Latency delays the operation before the error decision. A rule
	// with Latency and nil Err models a slow disk or slow peer.
	Latency time.Duration
}

// decision is the outcome of consulting the injector for one operation.
type decision struct {
	err     error
	shortBy int
	latency time.Duration
}

// Injector holds an ordered rule list and counts what it injected. The
// zero value and the nil pointer are both valid, inject nothing, and are
// safe for concurrent use.
type Injector struct {
	mu       sync.Mutex
	rules    []*ruleState
	injected int64
}

type ruleState struct {
	rule  Rule
	seen  int // matching operations observed (for Skip)
	fired int // operations faulted (for Count)
}

// NewInjector returns an injector armed with the given rules.
func NewInjector(rules ...Rule) *Injector {
	in := &Injector{}
	in.Arm(rules...)
	return in
}

// Arm appends rules to the injector. Existing rules keep their progress.
func (in *Injector) Arm(rules ...Rule) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range rules {
		rc := r
		in.rules = append(in.rules, &ruleState{rule: rc})
	}
}

// Clear removes every rule. In-flight operations that already took a
// decision still complete with it.
func (in *Injector) Clear() {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Injected reports how many operations have been faulted so far.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// check consults the rules for one operation. The first rule whose Op and
// Match apply and whose Skip window has passed decides the outcome; the
// latency sleep happens in the caller, outside the lock.
func (in *Injector) check(op Op, path string) decision {
	if in == nil {
		return decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, rs := range in.rules {
		r := &rs.rule
		if r.Op != op {
			continue
		}
		if r.Match != "" && !contains(path, r.Match) {
			continue
		}
		rs.seen++
		if rs.seen <= r.Skip {
			continue
		}
		if r.Count > 0 && rs.fired >= r.Count {
			continue
		}
		rs.fired++
		if r.Err != nil || r.ShortBy > 0 || r.Latency > 0 {
			in.injected++
		}
		return decision{err: r.Err, shortBy: r.ShortBy, latency: r.Latency}
	}
	return decision{}
}

// contains reports whether s contains sub (strings.Contains without the
// import, kept local so the hot nil-injector path stays dependency-free).
func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Sink is the file surface the WAL appender writes through: data writes
// plus fsync. It is structurally identical to wal.File; the local
// definition keeps this package import-free of the layers it serves.
type Sink interface {
	io.Writer
	Sync() error
}

// faultSink wraps a Sink with an injector keyed on a path.
type faultSink struct {
	name string
	f    Sink
	in   *Injector
}

// WrapFile returns f with the injector's OpWrite/OpSync rules applied to
// operations on name. A nil injector returns f unchanged.
func (in *Injector) WrapFile(name string, f Sink) Sink {
	if in == nil {
		return f
	}
	return &faultSink{name: name, f: f, in: in}
}

func (s *faultSink) Write(p []byte) (int, error) {
	d := s.in.check(OpWrite, s.name)
	if d.latency > 0 {
		time.Sleep(d.latency)
	}
	if d.err == nil && d.shortBy == 0 {
		return s.f.Write(p)
	}
	err := d.err
	if err == nil {
		err = ErrIO
	}
	keep := len(p) - d.shortBy
	if keep < 0 {
		keep = 0
	}
	if keep > 0 {
		n, werr := s.f.Write(p[:keep])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return 0, err
}

func (s *faultSink) Sync() error {
	d := s.in.check(OpSync, s.name)
	if d.latency > 0 {
		time.Sleep(d.latency)
	}
	if d.err != nil {
		return d.err
	}
	return s.f.Sync()
}

// Rename applies OpRename rules (matching either path) and then performs
// os.Rename. A nil injector renames directly.
func (in *Injector) Rename(oldpath, newpath string) error {
	if in != nil {
		d := in.check(OpRename, oldpath+"\x00"+newpath)
		if d.latency > 0 {
			time.Sleep(d.latency)
		}
		if d.err != nil {
			return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: d.err}
		}
	}
	return os.Rename(oldpath, newpath)
}

// OpenFile applies OpOpen rules and then performs os.OpenFile. A nil
// injector opens directly.
func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (*os.File, error) {
	if in != nil {
		d := in.check(OpOpen, name)
		if d.latency > 0 {
			time.Sleep(d.latency)
		}
		if d.err != nil {
			return nil, &os.PathError{Op: "open", Path: name, Err: d.err}
		}
	}
	return os.OpenFile(name, flag, perm)
}
