package fault

import (
	"fmt"
	"net/http"
	"time"
)

// Transport is an http.RoundTripper that applies the injector's OpDial
// rules to outbound requests, keyed on the target host. A matching rule
// with an error models a partition or connection reset (the request never
// reaches the peer); a rule with only Latency models a slow peer. With no
// matching rule the request passes to Base (http.DefaultTransport when
// nil), so a chaos test wires one Transport into every node's client and
// flips partitions on and off by arming and clearing rules.
type Transport struct {
	Injector *Injector
	Base     http.RoundTripper
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.Injector.check(OpDial, req.URL.Host)
	if d.latency > 0 {
		// Sleep honors request cancellation so a partitioned slow peer
		// cannot pin a caller past its context deadline.
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d.latency):
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("fault: dial %s: %w", req.URL.Host, d.err)
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
