package fault

import (
	"errors"
	"sync"
)

// ErrCrashed is returned by a BudgetFile once its byte budget is
// exhausted: the write that crosses the budget is torn mid-buffer and
// every operation after it fails, modeling a process that died with a
// partially flushed page. The crash harness treats any surviving prefix
// as what the disk may have kept.
var ErrCrashed = errors.New("fault: injected crash")

// Budget is a shared byte budget for one simulated crash. Every
// BudgetFile wired to it draws from the same allowance, so a harness can
// kill a WAL-plus-checkpoint write sequence at every byte offset across
// files with a single counter.
type Budget struct {
	mu        sync.Mutex
	remaining int64
	tripped   bool
}

// NewBudget returns a budget allowing n bytes before the crash fires.
func NewBudget(n int64) *Budget {
	return &Budget{remaining: n}
}

// Tripped reports whether the budget has been exhausted.
func (b *Budget) Tripped() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tripped
}

// BudgetFile passes writes through to an underlying Sink until the shared
// budget runs out; the write that crosses the line is shortened to the
// remaining allowance and returns ErrCrashed, and every later write or
// sync fails. This reproduces exactly the torn-tail images a SIGKILL can
// leave behind.
type BudgetFile struct {
	F      Sink
	Budget *Budget
}

func (f *BudgetFile) Write(p []byte) (int, error) {
	f.Budget.mu.Lock()
	defer f.Budget.mu.Unlock()
	if f.Budget.tripped {
		return 0, ErrCrashed
	}
	if int64(len(p)) > f.Budget.remaining {
		keep := int(f.Budget.remaining)
		f.Budget.tripped = true
		f.Budget.remaining = 0
		if keep > 0 {
			if n, err := f.F.Write(p[:keep]); err != nil {
				return n, err
			}
		}
		return keep, ErrCrashed
	}
	f.Budget.remaining -= int64(len(p))
	return f.F.Write(p)
}

func (f *BudgetFile) Sync() error {
	f.Budget.mu.Lock()
	defer f.Budget.mu.Unlock()
	if f.Budget.tripped {
		return ErrCrashed
	}
	return f.F.Sync()
}
