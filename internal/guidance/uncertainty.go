package guidance

import (
	"crowdval/internal/aggregation"
	"crowdval/internal/model"
)

// UncertaintyDriven selects the object whose validation is expected to reduce
// the uncertainty of the probabilistic answer set the most, i.e. the object
// with maximal information gain (§5.2, Eq. 8–10).
type UncertaintyDriven struct {
	// CandidateLimit restricts the expensive information-gain computation to
	// the CandidateLimit candidates with the highest entropy. Zero or
	// negative values evaluate every candidate.
	CandidateLimit int
}

// Name implements Strategy.
func (u *UncertaintyDriven) Name() string { return "uncertainty-driven" }

// Select implements Strategy.
func (u *UncertaintyDriven) Select(ctx *Context) (int, error) {
	candidates := ctx.candidates()
	if len(candidates) == 0 {
		return -1, ErrNoCandidates
	}
	candidates = topEntropyCandidates(ctx.ProbSet.Assignment, candidates, u.CandidateLimit)
	currentH := aggregation.Uncertainty(ctx.ProbSet)
	return scoreCandidates(ctx, candidates, func(o int) (float64, error) {
		return InformationGain(ctx, o, currentH)
	})
}

// InformationGain computes IG(o) = H(P) − H(P | o) for one object (Eq. 9).
// currentH is H(P); passing a negative value recomputes it.
//
// The conditional entropy H(P | o) (Eq. 8) is the expectation, over the
// current label distribution of o, of the uncertainty of the probabilistic
// answer set re-aggregated with the hypothetical expert input e(o) = l.
func InformationGain(ctx *Context, object int, currentH float64) (float64, error) {
	if currentH < 0 {
		currentH = aggregation.Uncertainty(ctx.ProbSet)
	}
	conditional, err := ConditionalUncertainty(ctx, object)
	if err != nil {
		return 0, err
	}
	return currentH - conditional, nil
}

// ConditionalUncertainty computes H(P | o) (Eq. 8): for every label l with
// non-zero probability, the answers are re-aggregated under the hypothetical
// validation e(o) = l and the resulting uncertainties are averaged, weighted
// by U(o, l).
func ConditionalUncertainty(ctx *Context, object int) (float64, error) {
	agg := ctx.aggregator()
	m := ctx.ProbSet.Assignment.NumLabels()
	expected := 0.0
	for l := 0; l < m; l++ {
		p := ctx.ProbSet.Assignment.Prob(object, model.Label(l))
		if p <= 0 {
			continue
		}
		hypothetical := ctx.ProbSet.Validation.Clone()
		hypothetical.Set(object, model.Label(l))
		res, err := aggregation.Do(ctx.ctx(), agg, ctx.Answers, hypothetical, ctx.ProbSet)
		if err != nil {
			return 0, err
		}
		expected += p * aggregation.Uncertainty(res.ProbSet)
	}
	return expected, nil
}
