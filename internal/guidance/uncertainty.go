package guidance

import (
	"crowdval/internal/aggregation"
	"crowdval/internal/model"
)

// UncertaintyDriven selects the object whose validation is expected to reduce
// the uncertainty of the probabilistic answer set the most, i.e. the object
// with maximal information gain (§5.2, Eq. 8–10).
//
// Two scorers are available. The exact reference scorer re-runs a full
// warm-started EM per (candidate, label) hypothesis — the literal Eq. 8. With
// Context.DeltaScore set, the delta-accelerated scorer estimates each
// hypothesis with one frontier-restricted EM pass over the candidate's dirty
// frontier (the object plus its answering workers' rows; see
// aggregation.ScoreIndex), trading a documented information-gain tolerance
// for orders of magnitude in latency. Both scorers rank candidates
// deterministically, serial or parallel.
type UncertaintyDriven struct {
	// CandidateLimit restricts the expensive information-gain computation to
	// the CandidateLimit candidates with the highest entropy. Zero or
	// negative values evaluate every candidate.
	CandidateLimit int
}

// Name implements Strategy.
func (u *UncertaintyDriven) Name() string { return "uncertainty-driven" }

// Select implements Strategy.
func (u *UncertaintyDriven) Select(ctx *Context) (int, error) {
	candidates, newScorer, err := u.prepare(ctx)
	if err != nil {
		return -1, err
	}
	return scoreBest(ctx, candidates, newScorer)
}

// SelectK implements KSelector: the top-k candidates ranked by information
// gain.
func (u *UncertaintyDriven) SelectK(ctx *Context, k int) ([]ScoredObject, error) {
	candidates, newScorer, err := u.prepare(ctx)
	if err != nil {
		return nil, err
	}
	return scoreTopK(ctx, candidates, newScorer, k)
}

// prepare narrows the candidate set and builds the per-goroutine scorer
// factory for the configured scoring mode. It runs before scoring fans out,
// so the shared index is fully built here.
func (u *UncertaintyDriven) prepare(ctx *Context) ([]int, func() scorerFunc, error) {
	candidates := ctx.candidates()
	if len(candidates) == 0 {
		return nil, nil, ErrNoCandidates
	}
	ix := ctx.index()
	candidates = topEntropyCandidates(ix, ctx.ProbSet.Assignment, candidates, u.CandidateLimit)
	currentH := ix.TotalUncertainty()
	if ctx.DeltaScore {
		blocked := ctx.BlockedRows
		return candidates, func() scorerFunc {
			sc := ix.NewScratch()
			if blocked {
				sc = ix.NewBlockedScratch()
			}
			return func(o int) (float64, error) {
				return currentH - sc.ConditionalUncertainty(o), nil
			}
		}, nil
	}
	return candidates, func() scorerFunc {
		// One scratch validation per scoring goroutine, set/unset per
		// hypothesis — not one Clone per (candidate, label).
		scratch := ctx.ProbSet.Validation.Clone()
		return func(o int) (float64, error) {
			conditional, err := conditionalUncertainty(ctx, o, scratch)
			if err != nil {
				return 0, err
			}
			return currentH - conditional, nil
		}
	}, nil
}

// InformationGain computes IG(o) = H(P) − H(P | o) for one object (Eq. 9).
// currentH is H(P); passing a negative value recomputes it.
//
// The conditional entropy H(P | o) (Eq. 8) is the expectation, over the
// current label distribution of o, of the uncertainty of the probabilistic
// answer set re-aggregated with the hypothetical expert input e(o) = l.
func InformationGain(ctx *Context, object int, currentH float64) (float64, error) {
	if currentH < 0 {
		currentH = aggregation.Uncertainty(ctx.ProbSet)
	}
	conditional, err := ConditionalUncertainty(ctx, object)
	if err != nil {
		return 0, err
	}
	return currentH - conditional, nil
}

// ConditionalUncertainty computes H(P | o) (Eq. 8) with the exact full-EM
// reference scorer: for every label l with non-zero probability, the answers
// are re-aggregated under the hypothetical validation e(o) = l and the
// resulting uncertainties are averaged, weighted by U(o, l).
func ConditionalUncertainty(ctx *Context, object int) (float64, error) {
	return conditionalUncertainty(ctx, object, ctx.ProbSet.Validation.Clone())
}

// conditionalUncertainty is ConditionalUncertainty against a caller-owned
// scratch validation, which it mutates and restores — the scoring loops hand
// in one scratch per goroutine instead of cloning the validation for every
// hypothesis. The scratch must equal ctx.ProbSet.Validation on entry and is
// returned to that state.
func conditionalUncertainty(ctx *Context, object int, scratch *model.Validation) (float64, error) {
	agg := ctx.aggregator()
	m := ctx.ProbSet.Assignment.NumLabels()
	expected := 0.0
	for l := 0; l < m; l++ {
		p := ctx.ProbSet.Assignment.Prob(object, model.Label(l))
		if p <= 0 {
			continue
		}
		scratch.Set(object, model.Label(l))
		res, err := aggregation.Do(ctx.ctx(), agg, ctx.Answers, scratch, ctx.ProbSet)
		scratch.Set(object, model.NoLabel)
		if err != nil {
			return 0, err
		}
		expected += p * aggregation.Uncertainty(res.ProbSet)
	}
	return expected, nil
}
