package guidance

import (
	"math"
	"math/rand"
	"testing"

	"crowdval/internal/aggregation"
	"crowdval/internal/model"
	"crowdval/internal/spamdetect"
)

// buildContext aggregates the answers with i-EM and wraps everything in a
// guidance context.
func buildContext(t *testing.T, answers *model.AnswerSet, validation *model.Validation) *Context {
	t.Helper()
	if validation == nil {
		validation = model.NewValidation(answers.NumObjects())
	}
	agg := &aggregation.IncrementalEM{}
	res, err := agg.Aggregate(answers, validation, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &Context{
		Answers:    answers,
		ProbSet:    res.ProbSet,
		Aggregator: agg,
		Detector:   &spamdetect.Detector{},
	}
}

// mixedCrowdAnswers builds a binary task with 3 reliable workers and one
// random spammer answering every object; object ambiguity varies.
func mixedCrowdAnswers(t *testing.T, n int, seed int64) (*model.AnswerSet, model.DeterministicAssignment) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := model.MustNewAnswerSet(n, 4, 2)
	truth := make(model.DeterministicAssignment, n)
	for o := 0; o < n; o++ {
		truth[o] = model.Label(o % 2)
		for w := 0; w < 3; w++ {
			l := truth[o]
			if rng.Float64() > 0.85 {
				l = model.Label(1 - int(l))
			}
			if err := a.SetAnswer(o, w, l); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.SetAnswer(o, 3, model.Label(rng.Intn(2))); err != nil {
			t.Fatal(err)
		}
	}
	return a, truth
}

func TestRandomStrategy(t *testing.T) {
	a, _ := mixedCrowdAnswers(t, 10, 1)
	ctx := buildContext(t, a, nil)
	r := &Random{Rand: rand.New(rand.NewSource(5))}
	o, err := r.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if o < 0 || o >= 10 {
		t.Fatalf("selected object %d out of range", o)
	}
	if r.Name() != "random" {
		t.Fatal("unexpected name")
	}
	// Restricting the candidates restricts the choice.
	ctx.Candidates = []int{3}
	o, err = r.Select(ctx)
	if err != nil || o != 3 {
		t.Fatalf("restricted selection = %d (%v)", o, err)
	}
	// Nil Rand still works.
	r2 := &Random{}
	if _, err := r2.Select(ctx); err != nil {
		t.Fatal(err)
	}
	// No candidates left.
	for o := 0; o < 10; o++ {
		ctx.ProbSet.Validation.Set(o, 0)
	}
	ctx.Candidates = nil
	if _, err := r.Select(ctx); err != ErrNoCandidates {
		t.Fatalf("expected ErrNoCandidates, got %v", err)
	}
}

func TestBaselineSelectsMaxEntropyObject(t *testing.T) {
	a, _ := mixedCrowdAnswers(t, 8, 2)
	ctx := buildContext(t, a, nil)
	// Force a clearly most-uncertain object.
	ctx.ProbSet.Assignment.SetRow(5, []float64{0.5, 0.5})
	for o := 0; o < 8; o++ {
		if o != 5 {
			ctx.ProbSet.Assignment.SetRow(o, []float64{0.95, 0.05})
		}
	}
	b := &Baseline{}
	o, err := b.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if o != 5 {
		t.Fatalf("baseline selected %d, want 5", o)
	}
	if b.Name() != "baseline-entropy" {
		t.Fatal("unexpected name")
	}
	ctx.Candidates = []int{}
	ctx.ProbSet.Validation = fullyValidated(8)
	if _, err := b.Select(ctx); err != ErrNoCandidates {
		t.Fatalf("expected ErrNoCandidates, got %v", err)
	}
}

func fullyValidated(n int) *model.Validation {
	v := model.NewValidation(n)
	for o := 0; o < n; o++ {
		v.Set(o, 0)
	}
	return v
}

func TestInformationGainPrefersAmbiguousObjects(t *testing.T) {
	a, _ := mixedCrowdAnswers(t, 12, 3)
	ctx := buildContext(t, a, nil)

	// Identify the most and least entropic objects under the aggregation.
	mostAmbiguous, _ := aggregation.MaxEntropyObject(ctx.ProbSet.Assignment, ctx.ProbSet.Validation.UnvalidatedObjects())
	leastAmbiguous, leastH := 0, math.Inf(1)
	for o := 0; o < 12; o++ {
		if h := aggregation.ObjectEntropy(ctx.ProbSet.Assignment, o); h < leastH {
			leastAmbiguous, leastH = o, h
		}
	}
	if mostAmbiguous == leastAmbiguous {
		t.Skip("degenerate aggregation: all objects equally certain")
	}
	currentH := aggregation.Uncertainty(ctx.ProbSet)
	igMost, err := InformationGain(ctx, mostAmbiguous, currentH)
	if err != nil {
		t.Fatal(err)
	}
	igLeast, err := InformationGain(ctx, leastAmbiguous, -1) // negative triggers recompute
	if err != nil {
		t.Fatal(err)
	}
	if igMost < igLeast {
		t.Fatalf("IG(most ambiguous)=%v < IG(least ambiguous)=%v", igMost, igLeast)
	}
}

func TestUncertaintyDrivenSelectAndCandidateLimit(t *testing.T) {
	a, _ := mixedCrowdAnswers(t, 10, 4)
	ctx := buildContext(t, a, nil)
	u := &UncertaintyDriven{}
	serial, err := u.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Parallel scoring must select the same object.
	ctxParallel := buildContext(t, a, nil)
	ctxParallel.Parallel = true
	ctxParallel.MaxParallelism = 4
	parallel, err := u.Select(ctxParallel)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("serial selected %d, parallel selected %d", serial, parallel)
	}
	// A candidate limit of 1 reduces to the entropy baseline.
	limited := &UncertaintyDriven{CandidateLimit: 1}
	sel, err := limited.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := (&Baseline{}).Select(ctx)
	if sel != base {
		t.Fatalf("candidate-limit-1 selected %d, baseline %d", sel, base)
	}
	if u.Name() != "uncertainty-driven" {
		t.Fatal("unexpected name")
	}
	ctx.ProbSet.Validation = fullyValidated(10)
	ctx.Candidates = nil
	if _, err := u.Select(ctx); err != ErrNoCandidates {
		t.Fatalf("expected ErrNoCandidates, got %v", err)
	}
}

func TestWorkerDrivenPrefersObjectsAnsweredBySuspects(t *testing.T) {
	// 6 objects; a random spammer answers only objects 0–2, reliable workers
	// answer everything. Object 0 is already validated, so validating another
	// spammer-covered object (1 or 2) pushes the spammer over the assessment
	// threshold, while objects 3–5 cannot reveal anything.
	a := model.MustNewAnswerSet(6, 3, 2)
	truth := model.DeterministicAssignment{0, 1, 0, 1, 0, 1}
	spammerAnswers := []model.Label{1, 0, 1} // disagrees with truth on all three
	for o := 0; o < 6; o++ {
		for w := 0; w < 2; w++ {
			if err := a.SetAnswer(o, w, truth[o]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for o := 0; o < 3; o++ {
		if err := a.SetAnswer(o, 2, spammerAnswers[o]); err != nil {
			t.Fatal(err)
		}
	}
	v := model.NewValidation(6)
	v.Set(0, truth[0])
	ctx := buildContext(t, a, v)
	ctx.Detector = &spamdetect.Detector{MinValidatedAnswers: 2, SloppyThreshold: 0.7}

	w := &WorkerDriven{}
	selected, err := w.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if selected != 1 && selected != 2 {
		t.Fatalf("worker-driven selected %d, want 1 or 2", selected)
	}
	if w.Name() != "worker-driven" {
		t.Fatal("unexpected name")
	}

	// Expected detections for an object the spammer never answered is (near)
	// zero — only the vanishingly unlikely hypothesis that the reliable
	// consensus is wrong contributes.
	priors := ctx.ProbSet.Assignment.Priors()
	none, err := ExpectedDetectedFaultyWorkers(ctx, 4, priors)
	if err != nil {
		t.Fatal(err)
	}
	if none > 0.01 {
		t.Fatalf("expected detections for uncovered object = %v, want ~0", none)
	}
	some, err := ExpectedDetectedFaultyWorkers(ctx, selected, priors)
	if err != nil {
		t.Fatal(err)
	}
	if some <= none {
		t.Fatalf("expected detections: covered %v <= uncovered %v", some, none)
	}
}

func TestWorkerDrivenNoCandidates(t *testing.T) {
	a, _ := mixedCrowdAnswers(t, 4, 6)
	ctx := buildContext(t, a, fullyValidated(4))
	w := &WorkerDriven{}
	if _, err := w.Select(ctx); err != ErrNoCandidates {
		t.Fatalf("expected ErrNoCandidates, got %v", err)
	}
}

func TestHybridWeightFormula(t *testing.T) {
	h := &Hybrid{}
	if h.Weight() != 0 {
		t.Fatal("initial weight must be 0")
	}
	// Early phase: no validations yet, the error rate dominates.
	z := h.UpdateWeight(1, 0, 0)
	if want := 1 - math.Exp(-1); math.Abs(z-want) > 1e-12 {
		t.Fatalf("z = %v, want %v", z, want)
	}
	// Late phase: validation ratio 1, the faulty-worker ratio dominates.
	z = h.UpdateWeight(1, 0.5, 1)
	if want := 1 - math.Exp(-0.5); math.Abs(z-want) > 1e-12 {
		t.Fatalf("z = %v, want %v", z, want)
	}
	// Inputs are clamped to [0, 1].
	z = h.UpdateWeight(-3, 7, 0.5)
	if want := 1 - math.Exp(-(0*0.5 + 1*0.5)); math.Abs(z-want) > 1e-12 {
		t.Fatalf("clamped z = %v, want %v", z, want)
	}
	if h.Weight() != z {
		t.Fatal("Weight() should return the latest value")
	}
	if h.Name() != "hybrid" {
		t.Fatal("unexpected name")
	}
}

func TestHybridRouletteWheel(t *testing.T) {
	a, _ := mixedCrowdAnswers(t, 8, 8)
	ctx := buildContext(t, a, nil)
	ctx.Detector = &spamdetect.Detector{}

	// With weight 0 the uncertainty branch is always taken.
	h := &Hybrid{Rand: rand.New(rand.NewSource(2))}
	if _, err := h.Select(ctx); err != nil {
		t.Fatal(err)
	}
	if h.LastChoiceWorkerDriven() {
		t.Fatal("weight 0 must never use the worker-driven branch")
	}
	// With weight ~1 the worker-driven branch dominates.
	h.UpdateWeight(1, 1, 1)
	workerChosen := 0
	for trial := 0; trial < 10; trial++ {
		if _, err := h.Select(ctx); err != nil {
			t.Fatal(err)
		}
		if h.LastChoiceWorkerDriven() {
			workerChosen++
		}
	}
	if workerChosen < 5 {
		t.Fatalf("worker-driven branch chosen %d/10 times with z=%.3f", workerChosen, h.Weight())
	}
	// Nil sub-strategies and nil Rand are tolerated.
	h2 := &Hybrid{}
	if _, err := h2.Select(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestConfirmationCheckDetectsErroneousValidation(t *testing.T) {
	// Strong crowd consensus on every object; the expert confirms object 0
	// correctly but validates object 1 with the wrong label.
	a := model.MustNewAnswerSet(6, 5, 2)
	truth := model.DeterministicAssignment{0, 1, 0, 1, 0, 1}
	for o := 0; o < 6; o++ {
		for w := 0; w < 5; w++ {
			if err := a.SetAnswer(o, w, truth[o]); err != nil {
				t.Fatal(err)
			}
		}
	}
	v := model.NewValidation(6)
	v.Set(0, truth[0])
	v.Set(1, model.Label(1-int(truth[1]))) // erroneous

	check := &ConfirmationCheck{}
	suspects, err := check.Check(a, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(suspects) != 1 || suspects[0].Object != 1 {
		t.Fatalf("suspects = %+v, want object 1 only", suspects)
	}
	if suspects[0].ExpertLabel == suspects[0].CrowdLabel {
		t.Fatal("suspect labels should disagree")
	}
	suspect, err := check.CheckObject(a, v, 1)
	if err != nil || !suspect {
		t.Fatalf("CheckObject(1) = %v (%v), want true", suspect, err)
	}
	ok, err := check.CheckObject(a, v, 0)
	if err != nil || ok {
		t.Fatalf("CheckObject(0) = %v (%v), want false", ok, err)
	}
	// Unvalidated objects are never suspect.
	ok, err = check.CheckObject(a, v, 3)
	if err != nil || ok {
		t.Fatal("unvalidated object flagged")
	}
	if _, err := check.Check(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
	if _, err := check.CheckObject(nil, nil, 0); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func TestConfirmationCheckPeriod(t *testing.T) {
	var nilCheck *ConfirmationCheck
	if nilCheck.EffectivePeriod() != 1 {
		t.Fatal("nil check period should be 1")
	}
	c := &ConfirmationCheck{Period: 5}
	if c.EffectivePeriod() != 5 {
		t.Fatal("explicit period ignored")
	}
	c.Period = -2
	if c.EffectivePeriod() != 1 {
		t.Fatal("negative period should clamp to 1")
	}
}

func TestTopEntropyCandidates(t *testing.T) {
	u := model.NewAssignmentMatrix(4, 2)
	u.SetRow(0, []float64{0.5, 0.5})
	u.SetRow(1, []float64{0.99, 0.01})
	u.SetRow(2, []float64{0.7, 0.3})
	u.SetRow(3, []float64{0.6, 0.4})
	all := []int{0, 1, 2, 3}
	top2 := topEntropyCandidates(nil, u, all, 2)
	if len(top2) != 2 || top2[0] != 0 || top2[1] != 3 {
		t.Fatalf("top2 = %v, want [0 3]", top2)
	}
	if got := topEntropyCandidates(nil, u, all, 0); len(got) != 4 {
		t.Fatal("limit 0 should keep all candidates")
	}
	if got := topEntropyCandidates(nil, u, all, 10); len(got) != 4 {
		t.Fatal("limit above length should keep all candidates")
	}
}
