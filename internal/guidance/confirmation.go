package guidance

import (
	"context"
	"fmt"

	"crowdval/internal/aggregation"
	"crowdval/internal/cverr"
	"crowdval/internal/model"
)

// ConfirmationCheck implements the lightweight detection of erroneous expert
// validations of §5.5. Every Period validations the check re-aggregates the
// answer set once per validated object with that object's validation removed;
// if the resulting deterministic assignment disagrees with the expert's
// label, the validation is flagged as potentially erroneous ("the crowd is
// wrong and the expert wrongly confirmed it" — case 2 in the paper).
type ConfirmationCheck struct {
	// Aggregator re-aggregates the answers without individual validations.
	// Nil uses a batch EM aggregator, which avoids biasing the check with
	// the state that was produced using the suspect validations.
	Aggregator aggregation.Aggregator
	// Period is the number of validations between two checks; it is only
	// interpreted by the validation engine. Values < 1 mean "after every
	// validation".
	Period int
}

// EffectivePeriod returns the configured period, at least 1.
func (c *ConfirmationCheck) EffectivePeriod() int {
	if c == nil || c.Period < 1 {
		return 1
	}
	return c.Period
}

func (c *ConfirmationCheck) aggregator() aggregation.Aggregator {
	if c != nil && c.Aggregator != nil {
		return c.Aggregator
	}
	return &aggregation.BatchEM{}
}

// SuspectValidation describes one expert validation flagged by the check.
type SuspectValidation struct {
	// Object is the validated object.
	Object int
	// ExpertLabel is the label the expert asserted.
	ExpertLabel model.Label
	// CrowdLabel is the label the aggregation produces when the expert's
	// validation of this object is withheld.
	CrowdLabel model.Label
}

// Check runs the confirmation check over all validated objects and returns
// the validations that disagree with the aggregation of the remaining
// evidence. The answer set and validation are not modified.
func (c *ConfirmationCheck) Check(answers *model.AnswerSet, validation *model.Validation) ([]SuspectValidation, error) {
	return c.CheckContext(context.Background(), answers, validation)
}

// CheckContext is Check with cancellation: the per-object re-aggregations
// observe ctx and the scan aborts with ctx.Err() once it is done.
func (c *ConfirmationCheck) CheckContext(ctx context.Context, answers *model.AnswerSet, validation *model.Validation) ([]SuspectValidation, error) {
	if answers == nil {
		return nil, fmt.Errorf("guidance: %w", cverr.ErrNilAnswerSet)
	}
	if validation == nil {
		return nil, fmt.Errorf("guidance: %w", cverr.ErrNilValidation)
	}
	agg := c.aggregator()
	var suspects []SuspectValidation
	for _, o := range validation.ValidatedObjects() {
		withheld := validation.CloneWithout(o)
		res, err := aggregation.Do(ctx, agg, answers, withheld, nil)
		if err != nil {
			return nil, err
		}
		d := res.ProbSet.Instantiate()
		if d[o] != validation.Get(o) {
			suspects = append(suspects, SuspectValidation{
				Object:      o,
				ExpertLabel: validation.Get(o),
				CrowdLabel:  d[o],
			})
		}
	}
	return suspects, nil
}

// CheckObject runs the confirmation check for a single validated object and
// reports whether its validation is suspect. Objects without a validation are
// never suspect.
func (c *ConfirmationCheck) CheckObject(answers *model.AnswerSet, validation *model.Validation, object int) (bool, error) {
	return c.CheckObjectContext(context.Background(), answers, validation, object)
}

// CheckObjectContext is CheckObject with cancellation.
func (c *ConfirmationCheck) CheckObjectContext(ctx context.Context, answers *model.AnswerSet, validation *model.Validation, object int) (bool, error) {
	if answers == nil {
		return false, fmt.Errorf("guidance: %w", cverr.ErrNilAnswerSet)
	}
	if validation == nil {
		return false, fmt.Errorf("guidance: %w", cverr.ErrNilValidation)
	}
	if !validation.Validated(object) {
		return false, nil
	}
	withheld := validation.CloneWithout(object)
	res, err := aggregation.Do(ctx, c.aggregator(), answers, withheld, nil)
	if err != nil {
		return false, err
	}
	d := res.ProbSet.Instantiate()
	return d[object] != validation.Get(object), nil
}
