package guidance

import (
	"crowdval/internal/model"
	"crowdval/internal/spamdetect"
)

// WorkerDriven selects the object whose validation is expected to unmask the
// most faulty workers (§5.3, Eq. 12–14).
//
// The exact reference scorer re-runs the full community detection per
// (candidate, label) hypothesis. With Context.DeltaScore set, the scorer
// detects the community once per selection and then reassesses, per
// hypothesis, only the workers who answered the candidate — the only workers
// whose validation-based confusion matrix the hypothetical validation can
// change — so one candidate costs O(answers-on-o) worker assessments instead
// of O(#workers). Unlike the uncertainty-driven delta scorer this is not an
// approximation: the incremental counts equal the full recount bit for bit.
type WorkerDriven struct {
	// CandidateLimit restricts the scoring to the CandidateLimit candidates
	// with the highest entropy. Zero or negative values evaluate every
	// candidate.
	CandidateLimit int
}

// Name implements Strategy.
func (w *WorkerDriven) Name() string { return "worker-driven" }

// Select implements Strategy.
func (w *WorkerDriven) Select(ctx *Context) (int, error) {
	candidates, newScorer, err := w.prepare(ctx)
	if err != nil {
		return -1, err
	}
	return scoreBest(ctx, candidates, newScorer)
}

// SelectK implements KSelector: the top-k candidates ranked by the expected
// number of detected faulty workers.
func (w *WorkerDriven) SelectK(ctx *Context, k int) ([]ScoredObject, error) {
	candidates, newScorer, err := w.prepare(ctx)
	if err != nil {
		return nil, err
	}
	return scoreTopK(ctx, candidates, newScorer, k)
}

// prepare narrows the candidate set and builds the per-goroutine scorer
// factory. The delta path runs the baseline community detection here, once,
// before scoring fans out.
func (w *WorkerDriven) prepare(ctx *Context) ([]int, func() scorerFunc, error) {
	candidates := ctx.candidates()
	if len(candidates) == 0 {
		return nil, nil, ErrNoCandidates
	}
	candidates = topEntropyCandidates(ctx.Index, ctx.ProbSet.Assignment, candidates, w.CandidateLimit)
	priors := ctx.ProbSet.Assignment.Priors()
	if ctx.DeltaScore {
		detector := ctx.detector()
		base, err := detector.DetectContext(ctx.ctx(), ctx.Answers, ctx.ProbSet.Validation, priors)
		if err != nil {
			return nil, nil, err
		}
		baseFaulty := len(base.FaultyWorkers())
		return candidates, func() scorerFunc {
			scratch := ctx.ProbSet.Validation.Clone()
			return func(o int) (float64, error) {
				return expectedFaultyIncremental(ctx, detector, o, priors, scratch, base.Assessments, baseFaulty)
			}
		}, nil
	}
	return candidates, func() scorerFunc {
		// One scratch validation per scoring goroutine, set/unset per
		// hypothesis — not one Clone per (candidate, label).
		scratch := ctx.ProbSet.Validation.Clone()
		return func(o int) (float64, error) {
			return expectedDetectedFaulty(ctx, o, priors, scratch)
		}
	}, nil
}

// ExpectedDetectedFaultyWorkers computes R(W | o) = Σ_l U(o, l)·R(W | o = l)
// (Eq. 13) with the exact full-detection reference scorer: the expected
// number of faulty workers that would be detected if the expert validated
// object o, where the expectation is taken over the current label
// distribution of o.
func ExpectedDetectedFaultyWorkers(ctx *Context, object int, priors []float64) (float64, error) {
	return expectedDetectedFaulty(ctx, object, priors, ctx.ProbSet.Validation.Clone())
}

// expectedDetectedFaulty is ExpectedDetectedFaultyWorkers against a
// caller-owned scratch validation, mutated and restored per hypothesis. The
// scratch must equal ctx.ProbSet.Validation on entry.
func expectedDetectedFaulty(ctx *Context, object int, priors []float64, scratch *model.Validation) (float64, error) {
	detector := ctx.detector()
	m := ctx.ProbSet.Assignment.NumLabels()
	expected := 0.0
	for l := 0; l < m; l++ {
		p := ctx.ProbSet.Assignment.Prob(object, model.Label(l))
		if p <= 0 {
			continue
		}
		scratch.Set(object, model.Label(l))
		count, err := detector.CountFaultyContext(ctx.ctx(), ctx.Answers, scratch, priors)
		scratch.Set(object, model.NoLabel)
		if err != nil {
			return 0, err
		}
		expected += p * float64(count)
	}
	return expected, nil
}

// expectedFaultyIncremental computes R(W | o) against a baseline detection:
// per hypothesis only the candidate's answering workers are reassessed, and
// the baseline faulty count is adjusted by their flag changes. A worker who
// did not answer o has an identical validation-based confusion matrix under
// the hypothesis, so its assessment cannot change — the incremental count
// equals the full recount exactly.
func expectedFaultyIncremental(ctx *Context, detector *spamdetect.Detector, object int, priors []float64,
	scratch *model.Validation, base []spamdetect.WorkerAssessment, baseFaulty int) (float64, error) {

	m := ctx.ProbSet.Assignment.NumLabels()
	expected := 0.0
	for l := 0; l < m; l++ {
		p := ctx.ProbSet.Assignment.Prob(object, model.Label(l))
		if p <= 0 {
			continue
		}
		scratch.Set(object, model.Label(l))
		count := baseFaulty
		for _, wa := range ctx.Answers.ObjectView(object) {
			assessment, err := detector.AssessWorker(ctx.Answers, scratch, wa.Worker, priors)
			if err != nil {
				scratch.Set(object, model.NoLabel)
				return 0, err
			}
			if assessment.Faulty() != base[wa.Worker].Faulty() {
				if assessment.Faulty() {
					count++
				} else {
					count--
				}
			}
		}
		scratch.Set(object, model.NoLabel)
		expected += p * float64(count)
	}
	return expected, nil
}
