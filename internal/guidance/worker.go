package guidance

import (
	"crowdval/internal/model"
)

// WorkerDriven selects the object whose validation is expected to unmask the
// most faulty workers (§5.3, Eq. 12–14).
type WorkerDriven struct {
	// CandidateLimit restricts the scoring to the CandidateLimit candidates
	// with the highest entropy. Zero or negative values evaluate every
	// candidate.
	CandidateLimit int
}

// Name implements Strategy.
func (w *WorkerDriven) Name() string { return "worker-driven" }

// Select implements Strategy.
func (w *WorkerDriven) Select(ctx *Context) (int, error) {
	candidates := ctx.candidates()
	if len(candidates) == 0 {
		return -1, ErrNoCandidates
	}
	candidates = topEntropyCandidates(ctx.ProbSet.Assignment, candidates, w.CandidateLimit)
	priors := ctx.ProbSet.Assignment.Priors()
	return scoreCandidates(ctx, candidates, func(o int) (float64, error) {
		return ExpectedDetectedFaultyWorkers(ctx, o, priors)
	})
}

// ExpectedDetectedFaultyWorkers computes R(W | o) = Σ_l U(o, l)·R(W | o = l)
// (Eq. 13): the expected number of faulty workers that would be detected if
// the expert validated object o, where the expectation is taken over the
// current label distribution of o.
func ExpectedDetectedFaultyWorkers(ctx *Context, object int, priors []float64) (float64, error) {
	detector := ctx.detector()
	m := ctx.ProbSet.Assignment.NumLabels()
	expected := 0.0
	for l := 0; l < m; l++ {
		p := ctx.ProbSet.Assignment.Prob(object, model.Label(l))
		if p <= 0 {
			continue
		}
		hypothetical := ctx.ProbSet.Validation.Clone()
		hypothetical.Set(object, model.Label(l))
		count, err := detector.CountFaultyContext(ctx.ctx(), ctx.Answers, hypothetical, priors)
		if err != nil {
			return 0, err
		}
		expected += p * float64(count)
	}
	return expected, nil
}
