package guidance

import (
	"math"
	"math/rand"
)

// Hybrid combines the uncertainty-driven and the worker-driven strategies
// with the dynamic weighting scheme of §5.4 (Eq. 15). In every iteration the
// engine updates the weight z_i from the observed error rate, the ratio of
// detected faulty workers and the ratio of answered validations; the strategy
// then performs a roulette-wheel choice: with probability z_i the
// worker-driven strategy selects the object, otherwise the uncertainty-driven
// one does.
type Hybrid struct {
	// Uncertainty and Worker are the two underlying strategies. Nil fields
	// are replaced by strategies with default configuration.
	Uncertainty *UncertaintyDriven
	Worker      *WorkerDriven
	// Rand drives the roulette-wheel choice; nil falls back to a fixed-seed
	// generator for reproducibility.
	Rand *rand.Rand

	// weight is the current z_i score in [0, 1).
	weight float64
	// lastWorkerDriven records which branch the previous Select call took.
	lastWorkerDriven bool
}

// Name implements Strategy.
func (h *Hybrid) Name() string { return "hybrid" }

// Weight returns the current z_i value.
func (h *Hybrid) Weight() float64 { return h.weight }

// SetWeight restores a previously observed z_i value (session resume).
func (h *Hybrid) SetWeight(w float64) { h.weight = clamp01(w) }

// LastChoiceWorkerDriven reports whether the most recent Select call used the
// worker-driven branch. Algorithm 1 only quarantines detected spammers when
// that branch was taken (line 12).
func (h *Hybrid) LastChoiceWorkerDriven() bool { return h.lastWorkerDriven }

// UpdateWeight recomputes z_{i+1} = 1 − exp(−(ε_i(1−f_i) + r_i·f_i)) from the
// error rate ε_i of the latest validation, the ratio of detected faulty
// workers r_i and the ratio of answered validations f_i (Eq. 15).
func (h *Hybrid) UpdateWeight(errorRate, faultyRatio, validationRatio float64) float64 {
	errorRate = clamp01(errorRate)
	faultyRatio = clamp01(faultyRatio)
	validationRatio = clamp01(validationRatio)
	h.weight = 1 - math.Exp(-(errorRate*(1-validationRatio) + faultyRatio*validationRatio))
	return h.weight
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ChooseBranch performs the roulette-wheel draw of one selection — with
// probability z_i the worker-driven strategy, otherwise the uncertainty-driven
// one — consumes exactly one pseudo-random value, records the branch for
// LastChoiceWorkerDriven, and returns the branch strategy. It exists as a
// separate step so callers that serve selections concurrently (the validation
// engine under a serving tier's read lock) can serialize only this stateful
// draw and run the expensive, read-only candidate scoring outside the lock.
func (h *Hybrid) ChooseBranch() KSelector {
	rng := h.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
		h.Rand = rng
	}
	if rng.Float64() < h.weight {
		h.lastWorkerDriven = true
		if h.Worker != nil {
			return h.Worker
		}
		return &WorkerDriven{}
	}
	h.lastWorkerDriven = false
	if h.Uncertainty != nil {
		return h.Uncertainty
	}
	return &UncertaintyDriven{}
}

// Select implements Strategy: a roulette-wheel choice between the
// worker-driven strategy (probability z_i) and the uncertainty-driven
// strategy (probability 1 − z_i).
func (h *Hybrid) Select(ctx *Context) (int, error) {
	return h.ChooseBranch().Select(ctx)
}

// SelectK implements KSelector: one roulette-wheel draw chooses the branch,
// which then ranks the top-k candidates. SelectK consumes exactly as much
// pseudo-random state as Select, so mixed single/batched selections keep the
// session's stream (and therefore snapshots) aligned.
func (h *Hybrid) SelectK(ctx *Context, k int) ([]ScoredObject, error) {
	return h.ChooseBranch().SelectK(ctx, k)
}
