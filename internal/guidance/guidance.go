// Package guidance implements the expert-guidance strategies of §5 of the
// paper: random selection, the entropy baseline, uncertainty-driven selection
// by expected information gain, worker-driven selection by expected number of
// detected faulty workers, and the hybrid strategy that dynamically weighs
// the two. It also provides the confirmation check for erroneous expert
// validations (§5.5).
package guidance

import (
	stdctx "context"
	"math/rand"
	"runtime"

	"crowdval/internal/aggregation"
	"crowdval/internal/cverr"
	"crowdval/internal/model"
	"crowdval/internal/par"
	"crowdval/internal/spamdetect"
)

// Context carries everything a selection strategy may need to score candidate
// objects for the next expert validation.
type Context struct {
	// Ctx optionally carries a cancellation context for the scoring work.
	// Candidate scoring re-aggregates the answers once per (candidate, label)
	// pair, which on large answer sets dominates the latency of a validation
	// step; a cancelled Ctx aborts the scoring with Ctx.Err(). Nil means
	// "never cancel". Context is a per-call parameter object — it is built
	// fresh for every Select call — so carrying the context here keeps the
	// Strategy interface free of a second parameter.
	Ctx stdctx.Context
	// Answers is the (possibly quarantined) answer set.
	Answers *model.AnswerSet
	// ProbSet is the current probabilistic answer set.
	ProbSet *model.ProbabilisticAnswerSet
	// Candidates are the object indices eligible for validation (typically
	// all objects the expert has not validated yet). An empty slice means
	// "all unvalidated objects of ProbSet".
	Candidates []int
	// Aggregator is used by strategies that must evaluate hypothetical
	// expert inputs (information gain). When nil, an IncrementalEM with
	// default configuration is used.
	Aggregator aggregation.Aggregator
	// Detector is used by the worker-driven strategy. When nil, a detector
	// with default thresholds is used.
	Detector *spamdetect.Detector
	// Parallel enables concurrent scoring of candidates.
	Parallel bool
	// MaxParallelism caps the number of scoring goroutines; values < 1 use
	// GOMAXPROCS.
	MaxParallelism int
	// Index optionally carries the per-aggregation scoring index (per-object
	// entropies, hypothetical-scoring tables). The validation engine builds
	// it once per aggregation and reuses it across Select calls; when nil,
	// scoring strategies build one on the fly for this call.
	Index *aggregation.ScoreIndex
	// DeltaScore routes candidate scoring through the delta-accelerated
	// hypothetical scorers: the uncertainty-driven strategy estimates each
	// hypothesis with one frontier-restricted EM pass (ScoreIndex/HypoScratch)
	// instead of a full warm EM re-aggregation, and the worker-driven
	// strategy reassesses only the candidate's answering workers against a
	// baseline detection instead of re-detecting the whole community. The
	// worker-driven path is exact; the uncertainty path approximates the
	// full-EM reference within the documented information-gain tolerance
	// (see the parity tests).
	DeltaScore bool
	// BlockedRows routes delta scoring through the blocked hypothetical
	// scorer (aggregation.ScoreIndex.NewBlockedScratch), whose E/M inner
	// loops walk contiguous transposed log-confusion slabs instead of
	// m-strided columns. Scores are bit-identical to the scalar scratch —
	// the layouts carry the same floats and every operation runs in the same
	// order — so this is a pure memory-layout knob; it has no effect without
	// DeltaScore.
	BlockedRows bool
}

func (c *Context) candidates() []int {
	if len(c.Candidates) > 0 {
		return c.Candidates
	}
	return c.ProbSet.Validation.UnvalidatedObjects()
}

// ctx returns the cancellation context, defaulting to context.Background.
func (c *Context) ctx() stdctx.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return stdctx.Background()
}

// aggregator and detector default to serial instances: strategies call them
// once per scored candidate, potentially from MaxParallelism scoring
// goroutines at once, so a GOMAXPROCS-sharded default would nest parallelism
// and oversubscribe the CPU. Explicit Aggregator/Detector fields are used
// exactly as given — a caller that scores serially may hand in sharded
// instances (note that core.Engine builds its scoring Context with a
// serialized detector copy when its Parallel flag is set; see core.Config).
func (c *Context) aggregator() aggregation.Aggregator {
	if c.Aggregator != nil {
		return c.Aggregator
	}
	return &aggregation.IncrementalEM{Config: aggregation.EMConfig{Parallelism: 1}}
}

func (c *Context) detector() *spamdetect.Detector {
	if c.Detector != nil {
		return c.Detector
	}
	return &spamdetect.Detector{Parallelism: 1}
}

func (c *Context) parallelism() int {
	if c.MaxParallelism > 0 {
		return c.MaxParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// index returns the per-aggregation scoring index, building (and memoizing)
// one when the caller did not supply it. The call must happen before scoring
// fans out: the index is shared read-only by all scoring goroutines.
func (c *Context) index() *aggregation.ScoreIndex {
	if c.Index == nil {
		c.Index = aggregation.NewScoreIndex(c.Answers, c.ProbSet, c.emConfig())
	}
	if c.DeltaScore {
		c.Index.EnsureHypoTables()
	}
	return c.Index
}

// emConfig extracts the EM parameters the hypothetical scorer mirrors from
// the context's aggregator, when it is one of the EM aggregators.
func (c *Context) emConfig() aggregation.EMConfig {
	return aggregation.EMConfigOf(c.Aggregator)
}

// ErrNoCandidates is returned when a strategy is asked to select an object
// but no candidate is available. It aliases the shared sentinel so
// errors.Is matches across layers.
var ErrNoCandidates = cverr.ErrNoCandidates

// Strategy selects the next object for which expert feedback should be
// sought (step "select" of the validation process).
type Strategy interface {
	// Name identifies the strategy in reports and experiment output.
	Name() string
	// Select returns the index of the chosen object.
	Select(ctx *Context) (int, error)
}

// ScoredObject is one ranked candidate of a batched selection: the object and
// the strategy's score for it (information gain for the uncertainty-driven
// strategy, expected detected faulty workers for the worker-driven one,
// entropy for the baseline, 0 for strategies without a meaningful score).
type ScoredObject struct {
	Object int     `json:"object"`
	Score  float64 `json:"score"`
}

// KSelector is implemented by strategies that can return a ranked top-k batch
// of candidates in one scoring pass. The ranking is deterministic — ordered
// by score descending, ties broken toward the smaller object index — and its
// first element is exactly the object Select would return. All strategies of
// this package implement it.
type KSelector interface {
	Strategy
	// SelectK returns up to k ranked candidates (fewer when fewer exist).
	SelectK(ctx *Context, k int) ([]ScoredObject, error)
}

// Random selects a candidate uniformly at random. It models the unguided
// manual validation process.
type Random struct {
	Rand *rand.Rand
}

// Name implements Strategy.
func (r *Random) Name() string { return "random" }

// Select implements Strategy.
func (r *Random) Select(ctx *Context) (int, error) {
	candidates := ctx.candidates()
	if len(candidates) == 0 {
		return -1, ErrNoCandidates
	}
	rng := r.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return candidates[rng.Intn(len(candidates))], nil
}

// SelectK implements KSelector: k distinct uniform draws (a partial
// Fisher–Yates shuffle). SelectK(ctx, 1) consumes exactly one draw, like
// Select, so mixing the two keeps the pseudo-random stream aligned. Scores
// are zero — random selection has no ranking signal.
func (r *Random) SelectK(ctx *Context, k int) ([]ScoredObject, error) {
	candidates := ctx.candidates()
	if len(candidates) == 0 {
		return nil, ErrNoCandidates
	}
	rng := r.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	if k < 1 {
		k = 1
	}
	pool := append([]int(nil), candidates...)
	out := make([]ScoredObject, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
		out[i] = ScoredObject{Object: pool[i]}
	}
	return out, nil
}

// Baseline selects the candidate with the highest entropy, i.e. the most
// "problematic" object. This is the baseline guidance method of §6.6
// (Appendix C).
type Baseline struct{}

// Name implements Strategy.
func (b *Baseline) Name() string { return "baseline-entropy" }

// Select implements Strategy.
func (b *Baseline) Select(ctx *Context) (int, error) {
	candidates := ctx.candidates()
	if len(candidates) == 0 {
		return -1, ErrNoCandidates
	}
	o, _ := aggregation.MaxEntropyObject(ctx.ProbSet.Assignment, candidates)
	return o, nil
}

// SelectK implements KSelector: the k candidates with the highest entropy,
// scored by that entropy. Entropies come from the per-aggregation index (or
// are computed once when the context carries none).
func (b *Baseline) SelectK(ctx *Context, k int) ([]ScoredObject, error) {
	candidates := ctx.candidates()
	if len(candidates) == 0 {
		return nil, ErrNoCandidates
	}
	ix := ctx.index()
	scores := make([]float64, len(candidates))
	for i, o := range candidates {
		scores[i] = ix.ObjectEntropy(o)
	}
	if k < 1 {
		k = 1
	}
	return topKByScore(candidates, scores, k), nil
}

// scorerFunc scores one candidate object. A scorer is used by exactly one
// goroutine, so implementations may keep per-goroutine scratch state.
type scorerFunc func(o int) (float64, error)

// scoreAll evaluates every candidate's score, optionally sharded across
// scoring goroutines through internal/par (the same dispatch the E/M-steps
// use, so cancellation and worker-cap semantics match the rest of the
// codebase). newScorer runs once per shard so each goroutine owns its scratch
// buffers. A cancelled ctx.Ctx aborts the scan between candidates and returns
// the context's error; results are identical for every parallelism degree
// because candidates are scored independently into disjoint slots.
func scoreAll(ctx *Context, candidates []int, newScorer func() scorerFunc) ([]float64, error) {
	scores := make([]float64, len(candidates))
	cancel := ctx.ctx()
	shards := 1
	if ctx.Parallel && len(candidates) > 1 {
		shards = par.Shards(ctx.parallelism(), len(candidates))
	}
	shardErr := make([]error, shards)
	err := par.ForNCtx(cancel, len(candidates), shards, func(shard, lo, hi int) {
		score := newScorer()
		for idx := lo; idx < hi; idx++ {
			if err := cancel.Err(); err != nil {
				shardErr[shard] = err
				return
			}
			v, err := score(candidates[idx])
			if err != nil {
				shardErr[shard] = err
				return
			}
			scores[idx] = v
		}
	})
	if err != nil {
		return nil, err
	}
	for _, err := range shardErr {
		if err != nil {
			return nil, err
		}
	}
	return scores, nil
}

// scoreCandidates evaluates score(o) for every candidate, optionally in
// parallel, and returns the candidate with the maximal score. Ties are broken
// toward the smallest object index so selections stay deterministic. A
// cancelled ctx.Ctx aborts the scan between candidates and returns the
// context's error.
func scoreCandidates(ctx *Context, candidates []int, score scorerFunc) (int, error) {
	return scoreBest(ctx, candidates, func() scorerFunc { return score })
}

// scoreBest is scoreCandidates with a per-goroutine scorer factory.
func scoreBest(ctx *Context, candidates []int, newScorer func() scorerFunc) (int, error) {
	scores, err := scoreAll(ctx, candidates, newScorer)
	if err != nil {
		return -1, err
	}
	best, bestValue := -1, 0.0
	for idx, o := range candidates {
		if best == -1 || scores[idx] > bestValue || (scores[idx] == bestValue && o < best) {
			best, bestValue = o, scores[idx]
		}
	}
	if best == -1 {
		return -1, ErrNoCandidates
	}
	return best, nil
}

// scoreTopK scores every candidate and returns the k best as a deterministic
// ranking (score descending, ties toward the smaller object index).
func scoreTopK(ctx *Context, candidates []int, newScorer func() scorerFunc, k int) ([]ScoredObject, error) {
	scores, err := scoreAll(ctx, candidates, newScorer)
	if err != nil {
		return nil, err
	}
	ranked := topKByScore(candidates, scores, k)
	if len(ranked) == 0 {
		return nil, ErrNoCandidates
	}
	return ranked, nil
}

// topKByScore selects the k best (score descending, ties toward the smaller
// object index) of parallel object/score slices by partial selection: a
// bounded min-heap of the k best seen so far, O(c·log k) instead of a full
// O(c·log c) sort. The returned ranking is fully ordered and deterministic —
// the (score, object) comparator is a total order.
func topKByScore(objects []int, scores []float64, k int) []ScoredObject {
	if k > len(objects) {
		k = len(objects)
	}
	if k <= 0 {
		return nil
	}
	// heap[0] is the worst kept element (min-heap under the ranking order).
	heap := make([]ScoredObject, 0, k)
	for idx, o := range objects {
		cand := ScoredObject{Object: o, Score: scores[idx]}
		if len(heap) < k {
			heap = append(heap, cand)
			for i := len(heap) - 1; i > 0; {
				parent := (i - 1) / 2
				if !ranksBelow(heap[i], heap[parent]) {
					break
				}
				heap[i], heap[parent] = heap[parent], heap[i]
				i = parent
			}
			continue
		}
		if ranksBelow(heap[0], cand) {
			heap[0] = cand
			siftDown(heap, 0)
		}
	}
	// Drain the heap into descending rank order in place: repeatedly swap the
	// worst remaining element to the back and restore the shrunk prefix.
	for end := len(heap) - 1; end > 0; end-- {
		heap[0], heap[end] = heap[end], heap[0]
		siftDown(heap[:end], 0)
	}
	return heap
}

// ranksBelow reports whether a ranks strictly below b in a ranking ordered
// by score descending with ties toward the smaller object index. It is a
// total order, which is what makes rankings deterministic.
func ranksBelow(a, b ScoredObject) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Object > b.Object
}

// siftDown restores the min-heap property (under ranksBelow) of s at index i.
func siftDown(s []ScoredObject, i int) {
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < len(s) && ranksBelow(s[left], s[smallest]) {
			smallest = left
		}
		if right < len(s) && ranksBelow(s[right], s[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
}

// topEntropyCandidates returns up to limit candidates with the highest object
// entropy. limit <= 0 returns the candidates unchanged. Pre-filtering by
// entropy keeps the expensive information-gain computation tractable on large
// answer sets without changing which objects are interesting: objects with
// near-zero entropy cannot yield a large gain. Entropies come from the
// per-aggregation index when available and are otherwise computed once into a
// slice — never inside a sort comparator — and the top slice is found by
// partial selection instead of a full sort.
func topEntropyCandidates(ix *aggregation.ScoreIndex, u *model.AssignmentMatrix, candidates []int, limit int) []int {
	if limit <= 0 || len(candidates) <= limit {
		return candidates
	}
	scores := make([]float64, len(candidates))
	if ix != nil {
		for i, o := range candidates {
			scores[i] = ix.ObjectEntropy(o)
		}
	} else {
		for i, o := range candidates {
			scores[i] = aggregation.ObjectEntropy(u, o)
		}
	}
	top := topKByScore(candidates, scores, limit)
	out := make([]int, len(top))
	for i, s := range top {
		out[i] = s.Object
	}
	return out
}
