// Package guidance implements the expert-guidance strategies of §5 of the
// paper: random selection, the entropy baseline, uncertainty-driven selection
// by expected information gain, worker-driven selection by expected number of
// detected faulty workers, and the hybrid strategy that dynamically weighs
// the two. It also provides the confirmation check for erroneous expert
// validations (§5.5).
package guidance

import (
	stdctx "context"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"crowdval/internal/aggregation"
	"crowdval/internal/cverr"
	"crowdval/internal/model"
	"crowdval/internal/spamdetect"
)

// Context carries everything a selection strategy may need to score candidate
// objects for the next expert validation.
type Context struct {
	// Ctx optionally carries a cancellation context for the scoring work.
	// Candidate scoring re-aggregates the answers once per (candidate, label)
	// pair, which on large answer sets dominates the latency of a validation
	// step; a cancelled Ctx aborts the scoring with Ctx.Err(). Nil means
	// "never cancel". Context is a per-call parameter object — it is built
	// fresh for every Select call — so carrying the context here keeps the
	// Strategy interface free of a second parameter.
	Ctx stdctx.Context
	// Answers is the (possibly quarantined) answer set.
	Answers *model.AnswerSet
	// ProbSet is the current probabilistic answer set.
	ProbSet *model.ProbabilisticAnswerSet
	// Candidates are the object indices eligible for validation (typically
	// all objects the expert has not validated yet). An empty slice means
	// "all unvalidated objects of ProbSet".
	Candidates []int
	// Aggregator is used by strategies that must evaluate hypothetical
	// expert inputs (information gain). When nil, an IncrementalEM with
	// default configuration is used.
	Aggregator aggregation.Aggregator
	// Detector is used by the worker-driven strategy. When nil, a detector
	// with default thresholds is used.
	Detector *spamdetect.Detector
	// Parallel enables concurrent scoring of candidates.
	Parallel bool
	// MaxParallelism caps the number of scoring goroutines; values < 1 use
	// GOMAXPROCS.
	MaxParallelism int
}

func (c *Context) candidates() []int {
	if len(c.Candidates) > 0 {
		return c.Candidates
	}
	return c.ProbSet.Validation.UnvalidatedObjects()
}

// ctx returns the cancellation context, defaulting to context.Background.
func (c *Context) ctx() stdctx.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return stdctx.Background()
}

// aggregator and detector default to serial instances: strategies call them
// once per scored candidate, potentially from MaxParallelism scoring
// goroutines at once, so a GOMAXPROCS-sharded default would nest parallelism
// and oversubscribe the CPU. Explicit Aggregator/Detector fields are used
// exactly as given — a caller that scores serially may hand in sharded
// instances (note that core.Engine builds its scoring Context with a
// serialized detector copy when its Parallel flag is set; see core.Config).
func (c *Context) aggregator() aggregation.Aggregator {
	if c.Aggregator != nil {
		return c.Aggregator
	}
	return &aggregation.IncrementalEM{Config: aggregation.EMConfig{Parallelism: 1}}
}

func (c *Context) detector() *spamdetect.Detector {
	if c.Detector != nil {
		return c.Detector
	}
	return &spamdetect.Detector{Parallelism: 1}
}

func (c *Context) parallelism() int {
	if c.MaxParallelism > 0 {
		return c.MaxParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// ErrNoCandidates is returned when a strategy is asked to select an object
// but no candidate is available. It aliases the shared sentinel so
// errors.Is matches across layers.
var ErrNoCandidates = cverr.ErrNoCandidates

// Strategy selects the next object for which expert feedback should be
// sought (step "select" of the validation process).
type Strategy interface {
	// Name identifies the strategy in reports and experiment output.
	Name() string
	// Select returns the index of the chosen object.
	Select(ctx *Context) (int, error)
}

// Random selects a candidate uniformly at random. It models the unguided
// manual validation process.
type Random struct {
	Rand *rand.Rand
}

// Name implements Strategy.
func (r *Random) Name() string { return "random" }

// Select implements Strategy.
func (r *Random) Select(ctx *Context) (int, error) {
	candidates := ctx.candidates()
	if len(candidates) == 0 {
		return -1, ErrNoCandidates
	}
	rng := r.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return candidates[rng.Intn(len(candidates))], nil
}

// Baseline selects the candidate with the highest entropy, i.e. the most
// "problematic" object. This is the baseline guidance method of §6.6
// (Appendix C).
type Baseline struct{}

// Name implements Strategy.
func (b *Baseline) Name() string { return "baseline-entropy" }

// Select implements Strategy.
func (b *Baseline) Select(ctx *Context) (int, error) {
	candidates := ctx.candidates()
	if len(candidates) == 0 {
		return -1, ErrNoCandidates
	}
	o, _ := aggregation.MaxEntropyObject(ctx.ProbSet.Assignment, candidates)
	return o, nil
}

// scoreCandidates evaluates score(o) for every candidate, optionally in
// parallel, and returns the candidate with the maximal score. Ties are broken
// toward the smallest object index so selections stay deterministic. A
// cancelled ctx.Ctx aborts the scan between candidates and returns the
// context's error.
func scoreCandidates(ctx *Context, candidates []int, score func(o int) (float64, error)) (int, error) {
	type scored struct {
		object int
		value  float64
		err    error
	}
	results := make([]scored, len(candidates))
	cancel := ctx.ctx()

	if ctx.Parallel && len(candidates) > 1 {
		workers := ctx.parallelism()
		if workers > len(candidates) {
			workers = len(candidates)
		}
		var wg sync.WaitGroup
		jobs := make(chan int)
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func() {
				defer wg.Done()
				for idx := range jobs {
					if err := cancel.Err(); err != nil {
						results[idx] = scored{object: candidates[idx], err: err}
						continue
					}
					v, err := score(candidates[idx])
					results[idx] = scored{object: candidates[idx], value: v, err: err}
				}
			}()
		}
		for idx := range candidates {
			jobs <- idx
		}
		close(jobs)
		wg.Wait()
	} else {
		for idx, o := range candidates {
			if err := cancel.Err(); err != nil {
				return -1, err
			}
			v, err := score(o)
			results[idx] = scored{object: o, value: v, err: err}
		}
	}
	if err := cancel.Err(); err != nil {
		return -1, err
	}

	best, bestValue := -1, 0.0
	for _, r := range results {
		if r.err != nil {
			return -1, r.err
		}
		if best == -1 || r.value > bestValue || (r.value == bestValue && r.object < best) {
			best, bestValue = r.object, r.value
		}
	}
	if best == -1 {
		return -1, ErrNoCandidates
	}
	return best, nil
}

// topEntropyCandidates returns up to limit candidates with the highest object
// entropy. limit <= 0 returns the candidates unchanged. Pre-filtering by
// entropy keeps the expensive information-gain computation tractable on large
// answer sets without changing which objects are interesting: objects with
// near-zero entropy cannot yield a large gain.
func topEntropyCandidates(u *model.AssignmentMatrix, candidates []int, limit int) []int {
	if limit <= 0 || len(candidates) <= limit {
		return candidates
	}
	sorted := append([]int(nil), candidates...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return aggregation.ObjectEntropy(u, sorted[i]) > aggregation.ObjectEntropy(u, sorted[j])
	})
	return sorted[:limit]
}
