package guidance

import (
	"context"
	"errors"
	"testing"

	"crowdval/internal/aggregation"
	"crowdval/internal/model"
)

// ctxTestContext builds a guidance context over a small aggregated crowd.
func ctxTestContext(t *testing.T, cancel context.Context, parallel bool) *Context {
	t.Helper()
	answers := model.MustNewAnswerSet(8, 4, 2)
	for o := 0; o < 8; o++ {
		for w := 0; w < 4; w++ {
			if err := answers.SetAnswer(o, w, model.Label((o+w)%2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := (&aggregation.IncrementalEM{}).Aggregate(answers, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &Context{
		Ctx:            cancel,
		Answers:        answers,
		ProbSet:        res.ProbSet,
		Parallel:       parallel,
		MaxParallelism: 2,
	}
}

// TestScoringCancelledMidway cancels the context from inside the first score
// call and asserts the scan aborts with the context's error instead of
// scoring the remaining candidates — on both the serial and parallel paths.
func TestScoringCancelledMidway(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		name := "serial"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			cancellable, cancel := context.WithCancel(context.Background())
			defer cancel()
			ctx := ctxTestContext(t, cancellable, parallel)
			calls := 0
			_, err := scoreCandidates(ctx, ctx.candidates(), func(o int) (float64, error) {
				calls++
				cancel()
				return float64(o), nil
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if !parallel && calls > 1 {
				t.Fatalf("serial scan scored %d candidates after cancellation", calls)
			}
		})
	}
}

// TestUncertaintyDrivenCancelled asserts a full strategy Select call aborts
// with the context's error: the expensive per-candidate re-aggregations
// observe the context through aggregation.Do.
func TestUncertaintyDrivenCancelled(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	ctx := ctxTestContext(t, cancelled, false)
	if _, err := (&UncertaintyDriven{}).Select(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("uncertainty-driven: %v", err)
	}
	if _, err := (&WorkerDriven{}).Select(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("worker-driven: %v", err)
	}
}

// TestConfirmationCheckCancelled asserts the confirmation scan propagates
// cancellation.
func TestConfirmationCheckCancelled(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	gctx := ctxTestContext(t, nil, false)
	validation := model.NewValidation(8)
	validation.Set(0, 1)
	if _, err := (&ConfirmationCheck{}).CheckContext(cancelled, gctx.Answers, validation); !errors.Is(err, context.Canceled) {
		t.Fatalf("confirmation check: %v", err)
	}
}

// TestBatchEMCancelled asserts a cancelled context aborts the EM loop itself.
func TestBatchEMCancelled(t *testing.T) {
	gctx := ctxTestContext(t, nil, false)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&aggregation.BatchEM{}).AggregateContext(cancelled, gctx.Answers, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch EM: %v", err)
	}
	if _, err := (&aggregation.IncrementalEM{}).AggregateContext(cancelled, gctx.Answers, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("incremental EM: %v", err)
	}
}
