package guidance

import (
	"math"
	"math/rand"
	"testing"

	"crowdval/internal/aggregation"
	"crowdval/internal/model"
	"crowdval/internal/spamdetect"
)

// deltaContext builds a guidance context with delta-accelerated scoring.
func deltaContext(t *testing.T, answers *model.AnswerSet, validation *model.Validation) *Context {
	t.Helper()
	ctx := buildContext(t, answers, validation)
	ctx.DeltaScore = true
	return ctx
}

func TestTopKByScore(t *testing.T) {
	objects := []int{4, 1, 7, 2, 9}
	scores := []float64{0.5, 0.9, 0.5, 0.1, 0.9}
	top := topKByScore(objects, scores, 3)
	// Ranking: score descending, ties toward the smaller object index.
	want := []ScoredObject{{Object: 1, Score: 0.9}, {Object: 9, Score: 0.9}, {Object: 4, Score: 0.5}}
	if len(top) != 3 {
		t.Fatalf("top = %v, want 3 entries", top)
	}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("top[%d] = %+v, want %+v", i, top[i], want[i])
		}
	}
	if got := topKByScore(objects, scores, 99); len(got) != len(objects) {
		t.Fatalf("k beyond length returned %d entries", len(got))
	}
	if got := topKByScore(objects, scores, 0); got != nil {
		t.Fatalf("k = 0 returned %v", got)
	}
	full := topKByScore(objects, scores, len(objects))
	for i := 1; i < len(full); i++ {
		if full[i-1].Score < full[i].Score {
			t.Fatalf("full ranking not sorted: %v", full)
		}
	}
}

// TestSelectKFirstMatchesSelect: for every strategy, SelectK(ctx, 1) picks
// exactly the object Select picks, and SelectK rankings are deterministic
// across serial and parallel scoring.
func TestSelectKFirstMatchesSelect(t *testing.T) {
	answers, _ := mixedCrowdAnswers(t, 14, 9)
	strategies := []KSelector{
		&UncertaintyDriven{},
		&WorkerDriven{},
		&Baseline{},
	}
	for _, deltaScore := range []bool{false, true} {
		for _, s := range strategies {
			ctx := buildContext(t, answers, nil)
			ctx.DeltaScore = deltaScore
			single, err := s.Select(ctx)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			ranked, err := s.SelectK(buildCtxLike(t, answers, deltaScore, false), 1)
			if err != nil {
				t.Fatalf("%s SelectK: %v", s.Name(), err)
			}
			if len(ranked) != 1 || ranked[0].Object != single {
				t.Fatalf("%s (delta=%v): Select = %d, SelectK(1) = %v", s.Name(), deltaScore, single, ranked)
			}

			serialK, err := s.SelectK(buildCtxLike(t, answers, deltaScore, false), 5)
			if err != nil {
				t.Fatal(err)
			}
			parallelK, err := s.SelectK(buildCtxLike(t, answers, deltaScore, true), 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(serialK) != 5 || len(parallelK) != 5 {
				t.Fatalf("%s: rankings have %d/%d entries, want 5", s.Name(), len(serialK), len(parallelK))
			}
			for i := range serialK {
				if serialK[i] != parallelK[i] {
					t.Fatalf("%s (delta=%v): serial ranking %v != parallel %v", s.Name(), deltaScore, serialK, parallelK)
				}
			}
			for i := 1; i < len(serialK); i++ {
				prev, cur := serialK[i-1], serialK[i]
				if prev.Score < cur.Score || (prev.Score == cur.Score && prev.Object > cur.Object) {
					t.Fatalf("%s: ranking order violated at %d: %v", s.Name(), i, serialK)
				}
			}
		}
	}
}

// buildCtxLike builds a fresh context over the same answers (the aggregation
// is deterministic, so repeated builds are bit-identical).
func buildCtxLike(t *testing.T, answers *model.AnswerSet, deltaScore, parallel bool) *Context {
	t.Helper()
	ctx := buildContext(t, answers, nil)
	ctx.DeltaScore = deltaScore
	ctx.Parallel = parallel
	ctx.MaxParallelism = 4
	return ctx
}

// TestWorkerDrivenDeltaScoresAreExact: the incremental worker-driven scorer
// is not an approximation — per-candidate scores equal the full-recount
// scorer bit for bit.
func TestWorkerDrivenDeltaScoresAreExact(t *testing.T) {
	answers, _ := mixedCrowdAnswers(t, 12, 5)
	v := model.NewValidation(12)
	v.Set(0, 0)
	v.Set(1, 1)
	exactCtx := buildContext(t, answers, v)
	exactCtx.Detector = &spamdetect.Detector{MinValidatedAnswers: 2, SloppyThreshold: 0.7}
	deltaCtx := buildContext(t, answers, v)
	deltaCtx.Detector = exactCtx.Detector
	deltaCtx.DeltaScore = true

	w := &WorkerDriven{}
	exact, err := w.SelectK(exactCtx, 10)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := w.SelectK(deltaCtx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != len(delta) {
		t.Fatalf("rankings differ in length: %d vs %d", len(exact), len(delta))
	}
	for i := range exact {
		if exact[i] != delta[i] {
			t.Fatalf("ranking[%d]: exact %+v != delta %+v", i, exact[i], delta[i])
		}
	}
}

// TestUncertaintyDeltaSelectionParity gates delta-scored selection against
// the exact full-EM reference at the documented tolerance: either the same
// object is selected, or the delta pick's exact information gain is within
// 5e-2 of the exact optimum.
func TestUncertaintyDeltaSelectionParity(t *testing.T) {
	const tolerance = 5e-2
	for seed := int64(1); seed <= 4; seed++ {
		answers, _ := mixedCrowdAnswers(t, 16, seed)
		exactCtx := buildContext(t, answers, nil)
		deltaCtx := deltaContext(t, answers, nil)
		u := &UncertaintyDriven{}
		exactPick, err := u.Select(exactCtx)
		if err != nil {
			t.Fatal(err)
		}
		deltaPick, err := u.Select(deltaCtx)
		if err != nil {
			t.Fatal(err)
		}
		if exactPick == deltaPick {
			continue
		}
		currentH := aggregation.Uncertainty(exactCtx.ProbSet)
		igExact, err := InformationGain(exactCtx, exactPick, currentH)
		if err != nil {
			t.Fatal(err)
		}
		igDelta, err := InformationGain(exactCtx, deltaPick, currentH)
		if err != nil {
			t.Fatal(err)
		}
		if igExact-igDelta > tolerance {
			t.Fatalf("seed %d: delta selected %d (exact IG %v), exact selected %d (IG %v): gap exceeds %v",
				seed, deltaPick, igDelta, exactPick, igExact, tolerance)
		}
	}
}

// TestHybridSelectKDrawParity: SelectK consumes exactly one roulette draw,
// like Select, so two hybrids with identical seeds stay aligned across mixed
// single/batched selections.
func TestHybridSelectKDrawParity(t *testing.T) {
	answers, _ := mixedCrowdAnswers(t, 10, 2)
	mk := func() *Hybrid { return &Hybrid{Rand: rand.New(rand.NewSource(3))} }
	h1, h2 := mk(), mk()
	h1.UpdateWeight(0.6, 0.4, 0.5)
	h2.UpdateWeight(0.6, 0.4, 0.5)
	for step := 0; step < 6; step++ {
		ctx1 := buildContext(t, answers, nil)
		ctx2 := buildContext(t, answers, nil)
		single, err := h1.Select(ctx1)
		if err != nil {
			t.Fatal(err)
		}
		ranked, err := h2.SelectK(ctx2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ranked[0].Object != single {
			t.Fatalf("step %d: Select = %d, SelectK[0] = %d", step, single, ranked[0].Object)
		}
		if h1.LastChoiceWorkerDriven() != h2.LastChoiceWorkerDriven() {
			t.Fatalf("step %d: branch draws diverged", step)
		}
	}
}

// TestRandomSelectK: distinct objects, first element matches Select under the
// same seed, k clamps to the candidate count.
func TestRandomSelectK(t *testing.T) {
	answers, _ := mixedCrowdAnswers(t, 8, 4)
	ctx := buildContext(t, answers, nil)
	r1 := &Random{Rand: rand.New(rand.NewSource(9))}
	r2 := &Random{Rand: rand.New(rand.NewSource(9))}
	single, err := r1.Select(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := r2.SelectK(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 || ranked[0].Object != single {
		t.Fatalf("SelectK = %v, want first element %d", ranked, single)
	}
	seen := map[int]bool{}
	for _, s := range ranked {
		if seen[s.Object] {
			t.Fatalf("duplicate object in random ranking: %v", ranked)
		}
		seen[s.Object] = true
	}
	all, err := (&Random{}).SelectK(ctx, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8 {
		t.Fatalf("clamped ranking has %d entries, want 8", len(all))
	}
}

// TestExactScorersReuseScratchValidation: the exact reference scorers must
// not clone the validation per (candidate, label) — public entry points
// still return identical values to the pre-scratch implementation.
func TestExactScorersReuseScratchValidation(t *testing.T) {
	answers, _ := mixedCrowdAnswers(t, 10, 6)
	ctx := buildContext(t, answers, nil)
	// Reference: literal clone-per-label implementation.
	cloneConditional := func(object int) float64 {
		agg := ctx.aggregator()
		m := ctx.ProbSet.Assignment.NumLabels()
		expected := 0.0
		for l := 0; l < m; l++ {
			p := ctx.ProbSet.Assignment.Prob(object, model.Label(l))
			if p <= 0 {
				continue
			}
			hypo := ctx.ProbSet.Validation.Clone()
			hypo.Set(object, model.Label(l))
			res, err := aggregation.Do(ctx.ctx(), agg, ctx.Answers, hypo, ctx.ProbSet)
			if err != nil {
				t.Fatal(err)
			}
			expected += p * aggregation.Uncertainty(res.ProbSet)
		}
		return expected
	}
	for o := 0; o < 5; o++ {
		got, err := ConditionalUncertainty(ctx, o)
		if err != nil {
			t.Fatal(err)
		}
		if want := cloneConditional(o); got != want {
			t.Fatalf("object %d: scratch conditional %v != clone-per-label %v", o, got, want)
		}
		// The scratch path must leave the shared validation untouched.
		if ctx.ProbSet.Validation.Validated(o) {
			t.Fatalf("object %d left validated after scoring", o)
		}
	}
	if math.IsNaN(aggregation.Uncertainty(ctx.ProbSet)) {
		t.Fatal("probabilistic state corrupted")
	}
}
