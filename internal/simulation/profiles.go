package simulation

import (
	"fmt"
	"sort"
)

// DatasetProfile describes one of the five real-world datasets of the paper's
// evaluation (Table 4) in terms of the synthetic parameters that reproduce
// its size, sparsity and difficulty. The profiles substitute for the original
// data (see DESIGN.md): the paper's algorithms only consume the answer matrix
// and the ground truth, so a synthetic matrix with the same shape and a
// worker population calibrated to the same initial precision exercises the
// same behaviour.
type DatasetProfile struct {
	// Name is the short dataset identifier used throughout the paper.
	Name string
	// Domain describes the original crowdsourcing task.
	Domain string
	// Objects, Workers and Labels are the dimensions from Table 4.
	Objects int
	Workers int
	Labels  int
	// AnswersPerObject is the simulated redundancy per question.
	AnswersPerObject int
	// NormalAccuracy calibrates the difficulty of the questions: lower
	// values model harder tasks (e.g. the art dataset).
	NormalAccuracy float64
	// SloppyAccuracy is the accuracy of the sloppy part of the population.
	SloppyAccuracy float64
	// Mix is the worker-type composition.
	Mix WorkerMix
}

// profiles holds the five dataset profiles, keyed by name.
var profiles = map[string]DatasetProfile{
	"bb": {
		Name: "bb", Domain: "image tagging", Objects: 108, Workers: 39, Labels: 2,
		AnswersPerObject: 15, NormalAccuracy: 0.68, SloppyAccuracy: 0.45,
		Mix: WorkerMix{Normal: 0.5, Sloppy: 0.3, UniformSpammer: 0.1, RandomSpammer: 0.1},
	},
	"rte": {
		Name: "rte", Domain: "semantic analysis (textual entailment)", Objects: 800, Workers: 164, Labels: 2,
		AnswersPerObject: 10, NormalAccuracy: 0.8, SloppyAccuracy: 0.5,
		Mix: WorkerMix{Normal: 0.6, Sloppy: 0.25, UniformSpammer: 0.075, RandomSpammer: 0.075},
	},
	"val": {
		Name: "val", Domain: "sentiment analysis (headline valence)", Objects: 100, Workers: 38, Labels: 2,
		AnswersPerObject: 10, NormalAccuracy: 0.65, SloppyAccuracy: 0.42,
		Mix: WorkerMix{Normal: 0.45, Sloppy: 0.3, UniformSpammer: 0.125, RandomSpammer: 0.125},
	},
	"twt": {
		Name: "twt", Domain: "sentiment analysis (tweets)", Objects: 300, Workers: 58, Labels: 2,
		AnswersPerObject: 12, NormalAccuracy: 0.7, SloppyAccuracy: 0.45,
		Mix: WorkerMix{Normal: 0.5, Sloppy: 0.3, UniformSpammer: 0.1, RandomSpammer: 0.1},
	},
	"art": {
		Name: "art", Domain: "sentiment analysis (scientific articles, hard)", Objects: 200, Workers: 49, Labels: 2,
		AnswersPerObject: 12, NormalAccuracy: 0.58, SloppyAccuracy: 0.38,
		Mix: WorkerMix{Normal: 0.4, Sloppy: 0.35, UniformSpammer: 0.125, RandomSpammer: 0.125},
	},
}

// ProfileNames returns the names of the available dataset profiles in a
// stable order.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Profile returns the dataset profile with the given name.
func Profile(name string) (DatasetProfile, error) {
	p, ok := profiles[name]
	if !ok {
		return DatasetProfile{}, fmt.Errorf("simulation: unknown dataset profile %q (available: %v)", name, ProfileNames())
	}
	return p, nil
}

// Generate materializes the profile into a dataset using the given seed.
func (p DatasetProfile) Generate(seed int64) (*Dataset, error) {
	d, err := GenerateCrowd(CrowdConfig{
		NumObjects:       p.Objects,
		NumWorkers:       p.Workers,
		NumLabels:        p.Labels,
		Mix:              p.Mix,
		NormalAccuracy:   p.NormalAccuracy,
		SloppyAccuracy:   p.SloppyAccuracy,
		AnswersPerObject: p.AnswersPerObject,
		Seed:             seed,
	})
	if err != nil {
		return nil, err
	}
	d.Name = p.Name
	return d, nil
}

// GenerateProfile is a convenience wrapper combining Profile and Generate.
func GenerateProfile(name string, seed int64) (*Dataset, error) {
	p, err := Profile(name)
	if err != nil {
		return nil, err
	}
	return p.Generate(seed)
}
