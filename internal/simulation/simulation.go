package simulation

import (
	"fmt"
	"math/rand"

	"crowdval/internal/model"
)

// WorkerMix describes the composition of the worker community as fractions
// per worker type. The fractions are normalized before use.
type WorkerMix struct {
	Reliable       float64
	Normal         float64
	Sloppy         float64
	UniformSpammer float64
	RandomSpammer  float64
}

// DefaultWorkerMix follows the crowd-population study cited in the paper
// (Kazai et al.): 43% capable workers, 32% sloppy workers and 25% spammers,
// the latter split evenly between uniform and random spammers.
func DefaultWorkerMix() WorkerMix {
	return WorkerMix{Normal: 0.43, Sloppy: 0.32, UniformSpammer: 0.125, RandomSpammer: 0.125}
}

func (m WorkerMix) total() float64 {
	return m.Reliable + m.Normal + m.Sloppy + m.UniformSpammer + m.RandomSpammer
}

// CrowdConfig parameterizes the synthetic crowd generator.
type CrowdConfig struct {
	// NumObjects (n), NumWorkers (k) and NumLabels (m) define the task.
	NumObjects int
	NumWorkers int
	NumLabels  int
	// Mix is the worker-type composition; a zero value uses DefaultWorkerMix.
	Mix WorkerMix
	// ReliableAccuracy is the probability that a reliable worker answers
	// correctly (default 0.95).
	ReliableAccuracy float64
	// NormalAccuracy is the r parameter of the paper: the probability that
	// a normal worker answers correctly (default 0.65).
	NormalAccuracy float64
	// SloppyAccuracy is the probability that a sloppy worker answers
	// correctly (default 0.4).
	SloppyAccuracy float64
	// AnswersPerObject limits how many workers answer each object; 0 means
	// every worker answers every object.
	AnswersPerObject int
	// MaxQuestionsPerWorker caps how many objects a single worker answers;
	// 0 means unlimited. It controls the sparsity studied in Table 5.
	MaxQuestionsPerWorker int
	// Seed makes the generation reproducible.
	Seed int64
}

func (c CrowdConfig) withDefaults() CrowdConfig {
	if c.Mix.total() == 0 {
		c.Mix = DefaultWorkerMix()
	}
	if c.ReliableAccuracy == 0 {
		c.ReliableAccuracy = 0.95
	}
	if c.NormalAccuracy == 0 {
		c.NormalAccuracy = 0.65
	}
	if c.SloppyAccuracy == 0 {
		c.SloppyAccuracy = 0.4
	}
	return c
}

// Dataset bundles a generated answer set with its ground truth and the
// simulated worker types.
type Dataset struct {
	Name        string
	Answers     *model.AnswerSet
	Truth       model.DeterministicAssignment
	WorkerTypes []model.WorkerType
}

// FaultyWorkers returns the indices of simulated workers whose type is
// faulty (sloppy, uniform spammer or random spammer).
func (d *Dataset) FaultyWorkers() []int {
	var out []int
	for w, t := range d.WorkerTypes {
		if t.Faulty() {
			out = append(out, w)
		}
	}
	return out
}

// Spammers returns the indices of simulated uniform and random spammers.
func (d *Dataset) Spammers() []int {
	var out []int
	for w, t := range d.WorkerTypes {
		if t == model.UniformSpammer || t == model.RandomSpammer {
			out = append(out, w)
		}
	}
	return out
}

// GenerateCrowd produces a synthetic dataset according to the configuration.
func GenerateCrowd(cfg CrowdConfig) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.NumObjects <= 0 || cfg.NumWorkers <= 0 || cfg.NumLabels <= 0 {
		return nil, fmt.Errorf("simulation: invalid dimensions %d objects, %d workers, %d labels",
			cfg.NumObjects, cfg.NumWorkers, cfg.NumLabels)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	answers, err := model.NewAnswerSet(cfg.NumObjects, cfg.NumWorkers, cfg.NumLabels)
	if err != nil {
		return nil, err
	}

	// Ground truth: uniformly random labels.
	truth := make(model.DeterministicAssignment, cfg.NumObjects)
	for o := range truth {
		truth[o] = model.Label(rng.Intn(cfg.NumLabels))
	}

	workerTypes := assignWorkerTypes(cfg, rng)
	// Uniform spammers stick to a single label each.
	stuckLabel := make([]model.Label, cfg.NumWorkers)
	for w := range stuckLabel {
		stuckLabel[w] = model.Label(rng.Intn(cfg.NumLabels))
	}

	answered := make([]int, cfg.NumWorkers) // questions answered per worker
	for o := 0; o < cfg.NumObjects; o++ {
		workers := selectWorkers(cfg, rng, answered)
		for _, w := range workers {
			label := simulateAnswer(cfg, rng, workerTypes[w], truth[o], stuckLabel[w])
			if err := answers.SetAnswer(o, w, label); err != nil {
				return nil, err
			}
			answered[w]++
		}
	}

	return &Dataset{
		Name:        "synthetic",
		Answers:     answers,
		Truth:       truth,
		WorkerTypes: workerTypes,
	}, nil
}

// assignWorkerTypes distributes worker types according to the mix.
func assignWorkerTypes(cfg CrowdConfig, rng *rand.Rand) []model.WorkerType {
	mix := cfg.Mix
	total := mix.total()
	types := make([]model.WorkerType, cfg.NumWorkers)
	// Deterministic proportional assignment followed by a shuffle keeps the
	// realized mix close to the requested one even for small crowds.
	counts := []struct {
		t model.WorkerType
		f float64
	}{
		{model.ReliableWorker, mix.Reliable / total},
		{model.NormalWorker, mix.Normal / total},
		{model.SloppyWorker, mix.Sloppy / total},
		{model.UniformSpammer, mix.UniformSpammer / total},
		{model.RandomSpammer, mix.RandomSpammer / total},
	}
	idx := 0
	for _, c := range counts {
		n := int(c.f*float64(cfg.NumWorkers) + 0.5)
		for i := 0; i < n && idx < cfg.NumWorkers; i++ {
			types[idx] = c.t
			idx++
		}
	}
	// Fill any remainder (rounding) with normal workers.
	for ; idx < cfg.NumWorkers; idx++ {
		types[idx] = model.NormalWorker
	}
	rng.Shuffle(len(types), func(i, j int) { types[i], types[j] = types[j], types[i] })
	return types
}

// selectWorkers picks which workers answer one object, honouring the
// answers-per-object and questions-per-worker limits.
func selectWorkers(cfg CrowdConfig, rng *rand.Rand, answered []int) []int {
	eligible := make([]int, 0, cfg.NumWorkers)
	for w := 0; w < cfg.NumWorkers; w++ {
		if cfg.MaxQuestionsPerWorker > 0 && answered[w] >= cfg.MaxQuestionsPerWorker {
			continue
		}
		eligible = append(eligible, w)
	}
	if cfg.AnswersPerObject <= 0 || cfg.AnswersPerObject >= len(eligible) {
		return eligible
	}
	rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	return eligible[:cfg.AnswersPerObject]
}

// simulateAnswer draws one answer for a worker of the given type.
func simulateAnswer(cfg CrowdConfig, rng *rand.Rand, t model.WorkerType, truth, stuck model.Label) model.Label {
	switch t {
	case model.UniformSpammer:
		return stuck
	case model.RandomSpammer:
		return model.Label(rng.Intn(cfg.NumLabels))
	}
	accuracy := cfg.NormalAccuracy
	switch t {
	case model.ReliableWorker:
		accuracy = cfg.ReliableAccuracy
	case model.SloppyWorker:
		accuracy = cfg.SloppyAccuracy
	}
	if rng.Float64() < accuracy {
		return truth
	}
	// Wrong answer: uniformly among the other labels.
	wrong := rng.Intn(cfg.NumLabels - 1)
	if model.Label(wrong) >= truth {
		wrong++
	}
	return model.Label(wrong)
}

// Subsample returns a copy of the dataset in which every object keeps at most
// answersPerObject randomly chosen answers. It models the paper's cost
// experiments, where answers are removed from the matrix and added back as
// the crowd budget grows (Appendix D).
func Subsample(d *Dataset, answersPerObject int, seed int64) (*Dataset, error) {
	if d == nil || d.Answers == nil {
		return nil, fmt.Errorf("simulation: nil dataset")
	}
	if answersPerObject < 0 {
		return nil, fmt.Errorf("simulation: negative answers per object")
	}
	rng := rand.New(rand.NewSource(seed))
	answers, err := model.NewAnswerSet(d.Answers.NumObjects(), d.Answers.NumWorkers(), d.Answers.NumLabels())
	if err != nil {
		return nil, err
	}
	for o := 0; o < d.Answers.NumObjects(); o++ {
		all := d.Answers.ObjectAnswers(o)
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		keep := len(all)
		if answersPerObject < keep {
			keep = answersPerObject
		}
		for _, wa := range all[:keep] {
			if err := answers.SetAnswer(o, wa.Worker, wa.Label); err != nil {
				return nil, err
			}
		}
	}
	return &Dataset{
		Name:        d.Name + "-subsampled",
		Answers:     answers,
		Truth:       d.Truth.Clone(),
		WorkerTypes: append([]model.WorkerType(nil), d.WorkerTypes...),
	}, nil
}
