package simulation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"crowdval/internal/metrics"
	"crowdval/internal/model"
)

func TestGenerateCrowdDimensionsAndDeterminism(t *testing.T) {
	cfg := CrowdConfig{NumObjects: 50, NumWorkers: 20, NumLabels: 3, Seed: 42}
	d1, err := GenerateCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Answers.NumObjects() != 50 || d1.Answers.NumWorkers() != 20 || d1.Answers.NumLabels() != 3 {
		t.Fatalf("dims = %v", d1.Answers)
	}
	if len(d1.Truth) != 50 || len(d1.WorkerTypes) != 20 {
		t.Fatal("truth or worker types missing")
	}
	for _, l := range d1.Truth {
		if !l.Valid(3) {
			t.Fatal("invalid ground-truth label")
		}
	}
	d2, err := GenerateCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < 50; o++ {
		for w := 0; w < 20; w++ {
			if d1.Answers.Answer(o, w) != d2.Answers.Answer(o, w) {
				t.Fatal("same seed produced different answers")
			}
		}
	}
	d3, err := GenerateCrowd(CrowdConfig{NumObjects: 50, NumWorkers: 20, NumLabels: 3, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for o := 0; o < 50 && same; o++ {
		for w := 0; w < 20; w++ {
			if d1.Answers.Answer(o, w) != d3.Answers.Answer(o, w) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical answers")
	}
}

func TestGenerateCrowdInvalidConfig(t *testing.T) {
	if _, err := GenerateCrowd(CrowdConfig{NumObjects: 0, NumWorkers: 5, NumLabels: 2}); err == nil {
		t.Fatal("zero objects accepted")
	}
	if _, err := GenerateCrowd(CrowdConfig{NumObjects: 5, NumWorkers: 0, NumLabels: 2}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := GenerateCrowd(CrowdConfig{NumObjects: 5, NumWorkers: 5, NumLabels: 0}); err == nil {
		t.Fatal("zero labels accepted")
	}
}

func TestWorkerMixDistribution(t *testing.T) {
	d, err := GenerateCrowd(CrowdConfig{
		NumObjects: 10, NumWorkers: 100, NumLabels: 2,
		Mix:  WorkerMix{Normal: 0.5, Sloppy: 0.2, UniformSpammer: 0.2, RandomSpammer: 0.1},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[model.WorkerType]int{}
	for _, wt := range d.WorkerTypes {
		counts[wt]++
	}
	if counts[model.NormalWorker] < 45 || counts[model.NormalWorker] > 55 {
		t.Fatalf("normal workers = %d, want ~50", counts[model.NormalWorker])
	}
	if counts[model.UniformSpammer] < 15 || counts[model.UniformSpammer] > 25 {
		t.Fatalf("uniform spammers = %d, want ~20", counts[model.UniformSpammer])
	}
	if got := len(d.FaultyWorkers()); got != counts[model.SloppyWorker]+counts[model.UniformSpammer]+counts[model.RandomSpammer] {
		t.Fatalf("FaultyWorkers = %d", got)
	}
	if got := len(d.Spammers()); got != counts[model.UniformSpammer]+counts[model.RandomSpammer] {
		t.Fatalf("Spammers = %d", got)
	}
}

func TestWorkerTypeBehaviours(t *testing.T) {
	d, err := GenerateCrowd(CrowdConfig{
		NumObjects: 300, NumWorkers: 12, NumLabels: 2,
		Mix:              WorkerMix{Normal: 0.25, Reliable: 0.25, UniformSpammer: 0.25, RandomSpammer: 0.25},
		ReliableAccuracy: 0.95,
		NormalAccuracy:   0.7,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for w, wt := range d.WorkerTypes {
		correct, total := 0, 0
		distinct := map[model.Label]bool{}
		for o := 0; o < 300; o++ {
			a := d.Answers.Answer(o, w)
			if a == model.NoLabel {
				continue
			}
			total++
			distinct[a] = true
			if a == d.Truth[o] {
				correct++
			}
		}
		if total == 0 {
			t.Fatalf("worker %d answered nothing", w)
		}
		acc := float64(correct) / float64(total)
		switch wt {
		case model.ReliableWorker:
			if acc < 0.88 {
				t.Fatalf("reliable worker accuracy = %v", acc)
			}
		case model.NormalWorker:
			if acc < 0.6 || acc > 0.8 {
				t.Fatalf("normal worker accuracy = %v", acc)
			}
		case model.UniformSpammer:
			if len(distinct) != 1 {
				t.Fatalf("uniform spammer used %d labels", len(distinct))
			}
		case model.RandomSpammer:
			if acc < 0.35 || acc > 0.65 {
				t.Fatalf("random spammer accuracy = %v", acc)
			}
		}
	}
}

func TestAnswersPerObjectAndQuestionsPerWorkerLimits(t *testing.T) {
	d, err := GenerateCrowd(CrowdConfig{
		NumObjects: 40, NumWorkers: 20, NumLabels: 2,
		AnswersPerObject:      5,
		MaxQuestionsPerWorker: 15,
		Seed:                  9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < 40; o++ {
		if got := len(d.Answers.ObjectAnswers(o)); got > 5 {
			t.Fatalf("object %d has %d answers, cap was 5", o, got)
		}
	}
	for w := 0; w < 20; w++ {
		if got := len(d.Answers.WorkerObjects(w)); got > 15 {
			t.Fatalf("worker %d answered %d questions, cap was 15", w, got)
		}
	}
}

func TestSubsample(t *testing.T) {
	d, err := GenerateCrowd(CrowdConfig{NumObjects: 30, NumWorkers: 25, NumLabels: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Subsample(d, 13, 1)
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < 30; o++ {
		if got := len(sub.Answers.ObjectAnswers(o)); got > 13 {
			t.Fatalf("object %d kept %d answers", o, got)
		}
		// Every kept answer must match the original.
		for _, wa := range sub.Answers.ObjectAnswers(o) {
			if d.Answers.Answer(o, wa.Worker) != wa.Label {
				t.Fatal("subsample altered an answer")
			}
		}
	}
	if len(sub.Truth) != len(d.Truth) {
		t.Fatal("subsample lost the ground truth")
	}
	if _, err := Subsample(nil, 5, 1); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := Subsample(d, -1, 1); err == nil {
		t.Fatal("negative limit accepted")
	}
	// Subsampling with a huge limit keeps everything.
	all, err := Subsample(d, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if all.Answers.AnswerCount() != d.Answers.AnswerCount() {
		t.Fatal("unlimited subsample dropped answers")
	}
}

func TestProfiles(t *testing.T) {
	names := ProfileNames()
	if len(names) != 5 {
		t.Fatalf("profiles = %v", names)
	}
	wantDims := map[string][3]int{
		"bb":  {108, 39, 2},
		"rte": {800, 164, 2},
		"val": {100, 38, 2},
		"twt": {300, 58, 2},
		"art": {200, 49, 2},
	}
	for name, dims := range wantDims {
		p, err := Profile(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Objects != dims[0] || p.Workers != dims[1] || p.Labels != dims[2] {
			t.Fatalf("%s dims = %d/%d/%d, want %v", name, p.Objects, p.Workers, p.Labels, dims)
		}
		d, err := GenerateProfile(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d.Answers.NumObjects() != dims[0] || d.Answers.NumWorkers() != dims[1] {
			t.Fatalf("%s generated dims mismatch", name)
		}
		if d.Name != name {
			t.Fatalf("dataset name = %q", d.Name)
		}
	}
	if _, err := Profile("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := GenerateProfile("nope", 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestProfileDifficultyOrdering checks the calibration property we rely on in
// the experiments: the art profile (hard questions) has a lower majority-vote
// precision than the rte profile (easy questions).
func TestProfileDifficultyOrdering(t *testing.T) {
	mvPrecision := func(name string) float64 {
		t.Helper()
		d, err := GenerateProfile(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		assignment := make(model.DeterministicAssignment, d.Answers.NumObjects())
		for o := 0; o < d.Answers.NumObjects(); o++ {
			counts := d.Answers.LabelCounts(o)
			best := 0
			for l, c := range counts {
				if c > counts[best] {
					best = l
				}
			}
			assignment[o] = model.Label(best)
		}
		return metrics.Precision(assignment, d.Truth)
	}
	easy := mvPrecision("rte")
	hard := mvPrecision("art")
	if easy <= hard {
		t.Fatalf("rte precision %v should exceed art precision %v", easy, hard)
	}
	if hard < 0.4 || hard > 0.85 {
		t.Fatalf("art majority-vote precision = %v, want a hard-but-not-random task", hard)
	}
	if easy < 0.8 {
		t.Fatalf("rte majority-vote precision = %v, want an easy task", easy)
	}
}

func TestOracleExpert(t *testing.T) {
	truth := model.DeterministicAssignment{0, 1, model.NoLabel}
	e := &OracleExpert{Truth: truth}
	if l, err := e.ValidateObject(1); err != nil || l != 1 {
		t.Fatalf("oracle = %v, %v", l, err)
	}
	if _, err := e.ValidateObject(5); err == nil {
		t.Fatal("out-of-range object accepted")
	}
	if _, err := e.ValidateObject(2); err == nil {
		t.Fatal("object without ground truth accepted")
	}
}

func TestErroneousExpert(t *testing.T) {
	truth := make(model.DeterministicAssignment, 200)
	for i := range truth {
		truth[i] = model.Label(i % 2)
	}
	e := NewErroneousExpert(truth, 2, 0.3, rand.New(rand.NewSource(1)))
	mistakes := 0
	for o := 0; o < 200; o++ {
		l, err := e.ValidateObject(o)
		if err != nil {
			t.Fatal(err)
		}
		if l != truth[o] {
			mistakes++
		}
	}
	if e.MistakeCount() != mistakes {
		t.Fatalf("MistakeCount = %d, observed %d", e.MistakeCount(), mistakes)
	}
	// Roughly 30% mistakes expected.
	if mistakes < 40 || mistakes > 80 {
		t.Fatalf("mistakes = %d, want ~60", mistakes)
	}
	if len(e.Mistakes()) != mistakes {
		t.Fatal("Mistakes() length mismatch")
	}
	// Re-asking always yields the truth.
	for _, o := range e.Mistakes() {
		l, err := e.ValidateObject(o)
		if err != nil || l != truth[o] {
			t.Fatalf("reconsidered answer = %v, %v", l, err)
		}
	}
	if _, err := e.ValidateObject(999); err == nil {
		t.Fatal("out-of-range object accepted")
	}
	// A zero mistake probability behaves like the oracle.
	perfect := NewErroneousExpert(truth, 2, 0, nil)
	for o := 0; o < 50; o++ {
		if l, _ := perfect.ValidateObject(o); l != truth[o] {
			t.Fatal("zero-probability expert made a mistake")
		}
	}
}

func TestDefaultWorkerMix(t *testing.T) {
	mix := DefaultWorkerMix()
	if math.Abs(mix.total()-1) > 1e-9 {
		t.Fatalf("default mix sums to %v", mix.total())
	}
	if mix.UniformSpammer+mix.RandomSpammer != 0.25 {
		t.Fatalf("spammer share = %v, want 0.25", mix.UniformSpammer+mix.RandomSpammer)
	}
}

// Property: generated answers always use valid labels and respect redundancy
// limits.
func TestGenerateCrowdValidityProperty(t *testing.T) {
	f := func(seed int64, redundancy uint8) bool {
		per := int(redundancy%10) + 1
		d, err := GenerateCrowd(CrowdConfig{
			NumObjects: 15, NumWorkers: 8, NumLabels: 3,
			AnswersPerObject: per,
			Seed:             seed,
		})
		if err != nil {
			return false
		}
		for o := 0; o < 15; o++ {
			if len(d.Answers.ObjectAnswers(o)) > per {
				return false
			}
			for _, wa := range d.Answers.ObjectAnswers(o) {
				if !wa.Label.Valid(3) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
