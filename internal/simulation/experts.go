package simulation

import (
	"fmt"
	"math/rand"
	"sort"

	"crowdval/internal/cverr"
	"crowdval/internal/model"
)

// OracleExpert is a simulated validating expert that always answers with the
// ground-truth label. It mimics the evaluation setup in which the datasets'
// ground truth plays the role of the expert (§6.6).
type OracleExpert struct {
	Truth model.DeterministicAssignment
}

// ValidateObject implements the core.Expert contract.
func (e *OracleExpert) ValidateObject(object int) (model.Label, error) {
	if object < 0 || object >= len(e.Truth) {
		return model.NoLabel, fmt.Errorf("%w: object %d outside the ground truth (%d objects)", cverr.ErrNoGroundTruth, object, len(e.Truth))
	}
	if e.Truth[object] == model.NoLabel {
		return model.NoLabel, fmt.Errorf("%w: object %d", cverr.ErrNoGroundTruth, object)
	}
	return e.Truth[object], nil
}

// ErroneousExpert simulates the expert-mistake study of §6.7: on the first
// elicitation for an object the expert answers incorrectly with probability
// MistakeProbability (choosing a uniformly random wrong label); when asked
// again about the same object — which happens when the confirmation check
// flags the validation — the expert reconsiders and answers correctly.
type ErroneousExpert struct {
	Truth              model.DeterministicAssignment
	NumLabels          int
	MistakeProbability float64
	Rand               *rand.Rand

	asked    map[int]bool
	mistakes map[int]bool
}

// NewErroneousExpert creates an erroneous expert with the given mistake
// probability.
func NewErroneousExpert(truth model.DeterministicAssignment, numLabels int, mistakeProbability float64, rng *rand.Rand) *ErroneousExpert {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &ErroneousExpert{
		Truth:              truth,
		NumLabels:          numLabels,
		MistakeProbability: mistakeProbability,
		Rand:               rng,
		asked:              make(map[int]bool),
		mistakes:           make(map[int]bool),
	}
}

// ValidateObject implements the core.Expert contract.
func (e *ErroneousExpert) ValidateObject(object int) (model.Label, error) {
	if object < 0 || object >= len(e.Truth) || e.Truth[object] == model.NoLabel {
		return model.NoLabel, fmt.Errorf("%w: object %d", cverr.ErrNoGroundTruth, object)
	}
	truth := e.Truth[object]
	if e.asked[object] {
		// Reconsideration after the confirmation check: the expert fixes the
		// earlier slip.
		return truth, nil
	}
	e.asked[object] = true
	if e.NumLabels > 1 && e.Rand.Float64() < e.MistakeProbability {
		e.mistakes[object] = true
		wrong := e.Rand.Intn(e.NumLabels - 1)
		if model.Label(wrong) >= truth {
			wrong++
		}
		return model.Label(wrong), nil
	}
	return truth, nil
}

// Mistakes returns the objects for which the expert gave an erroneous first
// answer, in ascending order.
func (e *ErroneousExpert) Mistakes() []int {
	out := make([]int, 0, len(e.mistakes))
	for o := range e.mistakes {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}

// MistakeCount returns the number of erroneous first answers given so far.
func (e *ErroneousExpert) MistakeCount() int { return len(e.mistakes) }
