// Package simulation generates synthetic crowdsourcing data following the
// worker-type model of "Minimizing Efforts in Validating Crowd Answers"
// (SIGMOD 2015, Appendix A): reliable, normal and sloppy workers plus
// uniform and random spammers, mixed according to the crowd-population study
// the paper cites (Kazai et al., CIKM 2011). It also ships profiles that
// mimic the five real-world datasets of the evaluation (bluebird, rte,
// valence, tweet, article) in size, sparsity and difficulty, and simulated
// experts (perfect oracles and experts that occasionally make mistakes,
// §5.5).
//
// Sparsity is controlled through CrowdConfig.AnswersPerObject and
// CrowdConfig.MaxQuestionsPerWorker — the knobs behind the paper's Table 5 —
// and feeds the sparse adjacency representation of model.AnswerSet directly,
// so generating a 50 000 × 500 crowd at ~1% density allocates memory for the
// ~250 000 answers only, never for the 25 000 000-cell dense matrix.
//
// The real datasets themselves are not redistributed here; the profiles are
// the substitution documented in DESIGN.md — they exercise exactly the same
// code paths and reproduce the qualitative shapes of the evaluation.
package simulation
