// Package server is the multi-tenant serving layer of the crowdval library:
// a SessionManager that keeps many named validation sessions resident,
// serializes the writers of each session while allowing concurrent readers,
// parks cold sessions to disk under a configurable memory budget using the
// snapshot codec, and transparently resumes them on the next touch — the
// architecture that lets one process serve far more long-lived validation
// campaigns than fit in memory, because the i-EM warm start makes a resumed
// session exactly as cheap to update as one that never left. An HTTP facade
// (Server) exposes the manager as a JSON API.
package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"crowdval"
	"crowdval/internal/cverr"
	"crowdval/internal/fault"
	"crowdval/internal/wal"
)

// ManagerConfig parameterizes a SessionManager.
type ManagerConfig struct {
	// MemoryBudget caps the estimated bytes of resident session state. When
	// the total exceeds the budget, least-recently-used sessions are parked
	// to disk until it fits (the session in active use is never parked).
	// Zero or negative means unlimited: nothing is ever parked automatically.
	MemoryBudget int64
	// ParkDir is the directory parked session snapshots are written to. It
	// is created if missing.
	ParkDir string

	// WALDir enables durability: every session mutation is appended to a
	// per-session write-ahead log in this directory before it is applied,
	// periodic snapshot checkpoints bound replay time, and Recover rebuilds
	// the sessions after a crash. Empty disables the WAL (the pre-durability
	// behavior: a crash loses everything since the last explicit snapshot).
	WALDir string
	// WALSync is the log's fsync policy (see wal.SyncPolicy): per-record,
	// every-N-records, or never. The zero value is SyncOff.
	WALSync wal.SyncPolicy
	// CheckpointEvery is the number of logged records between snapshot
	// checkpoints of a session (which also truncate its log down to the
	// fallback generation). Zero means DefaultCheckpointEvery when the WAL
	// is enabled; negative disables checkpointing.
	CheckpointEvery int
	// MaxQueuedIngest bounds the per-session ingest coalescing queue. An
	// AddAnswers request that finds the queue at the bound is shed with
	// ErrOverloaded (HTTP 429) instead of piling up behind a slow
	// aggregation. Zero or negative means unbounded.
	MaxQueuedIngest int
	// WALFlushEachRecord flushes (without fsyncing) the log buffer after every
	// appended record, so a WAL tailer — a follower subscription — sees a
	// record as soon as it is logged instead of at the next sync point. It
	// costs a small write per mutation and changes no durability guarantee;
	// irrelevant (and ignored) under wal.SyncAlways, which flushes anyway.
	WALFlushEachRecord bool
	// FaultInjector, when set, is threaded through every durability I/O seam
	// — WAL appends and fsyncs, checkpoint writes, rotation renames, file
	// opens, the health probe — so tests and chaos harnesses inject disk
	// faults exactly where a real disk would fail. nil (the default) injects
	// nothing and costs one nil check per seam.
	FaultInjector *fault.Injector
}

// WithWAL returns a copy of the config with the write-ahead log enabled in
// dir under the given sync policy — the fluent spelling of setting WALDir
// and WALSync directly.
func (c ManagerConfig) WithWAL(dir string, policy wal.SyncPolicy) ManagerConfig {
	c.WALDir = dir
	c.WALSync = policy
	return c
}

// DefaultCheckpointEvery is the records-between-checkpoints default when the
// WAL is enabled and ManagerConfig.CheckpointEvery is zero.
const DefaultCheckpointEvery = 256

// Manager owns a set of named, long-lived validation sessions. All methods
// are safe for concurrent use: operations on distinct sessions run in
// parallel, operations on one session are serialized through a per-session
// RWMutex (single writer, many readers), and the LRU/accounting state is
// guarded separately so slow session work never blocks bookkeeping of other
// sessions.
type Manager struct {
	budget int64
	dir    string

	// Durability configuration (immutable after NewManager).
	walDir       string
	walSync      wal.SyncPolicy
	ckptEvery    int
	maxIngestQ   int
	walFlushEach bool
	// walOpen wraps every opened log file; the crash-fault-injection tests
	// install a writer that dies at a chosen byte offset. nil = identity.
	walOpen func(name string, f *os.File) wal.File
	// injector is the configured fault injector; nil injects nothing (its
	// methods are nil-receiver safe, so seams call it unconditionally).
	injector *fault.Injector

	// mu guards the session table, the LRU list and the accounting fields
	// below. It is never held while session work runs.
	mu       sync.Mutex
	sessions map[string]*entry
	lru      *list.List // of *entry; front = most recently used
	resident int64      // estimated bytes of resident session state
	parked   int64      // number of parked sessions

	// Cumulative counters, guarded by mu.
	ingested      int64
	ingestBatches int64 // AddAnswers calls actually executed against sessions
	coalesced     int64 // ingest requests merged into another request's batch
	validations   int64
	selections    int64
	evictions     int64
	resumes       int64
	emIters       int64
	deltaIters    int64
	// budgetRemaining is the summed monetary budget remaining across all
	// budgeted sessions, folded in by settle after every exclusive operation
	// (a read never changes a budget).
	budgetRemaining float64

	// Durability counters. They are atomics, not mu-guarded fields: the WAL
	// appends that update them run inside per-session critical sections, and
	// a metrics scrape must never queue behind (or take a lock inside) an
	// in-flight fsync.
	walRecords      atomic.Int64
	walBytes        atomic.Int64
	walSyncs        atomic.Int64
	checkpoints     atomic.Int64
	checkpointFails atomic.Int64
	recovered       atomic.Int64
	replayed        atomic.Int64
	shed            atomic.Int64

	// Health gauges and counters (see health.go). walDegraded/walFailStop
	// are current-state gauges maintained by the state transitions, which
	// run under entry write locks; the rest are cumulative. Atomics so
	// scrapes and readiness probes never take a lock.
	walDegraded    atomic.Int64
	walFailStop    atomic.Int64
	degradeEvents  atomic.Int64
	walHeals       atomic.Int64
	probeFailures  atomic.Int64
	enospcReclaims atomic.Int64

	// Maintained-view counters: cumulative from-scratch score-index builds
	// and in-place patches across all sessions. Atomics for the same reason
	// as the durability counters — selections account them under the entry's
	// shared read lock, where a mu-guarded field would serialize readers.
	scoreIndexBuilds  atomic.Int64
	scoreIndexPatches atomic.Int64

	// globalSelections counts served marketplace reads (GlobalNext calls).
	// An atomic for the same reason: global reads run under shared entry
	// read locks.
	globalSelections atomic.Int64
}

// entry is the manager's handle for one named session.
//
// Locking: sess, deleted, isParked and emSeen are guarded by the entry's own
// mu; bytes, parking and elem are guarded by the manager's mu. The only
// place both are held is the accounting step after an operation, which takes
// them in the fixed order entry.mu → manager.mu.
type entry struct {
	name string

	mu       sync.RWMutex
	sess     *crowdval.Session // nil while parked (or while creation is in flight)
	deleted  bool
	isParked bool
	// emSeen/deltaSeen are the session's TotalEMIterations and
	// TotalDeltaIterations already folded into the manager's cumulative
	// counters; a resumed session restarts at zero.
	emSeen    int
	deltaSeen int
	// scoreBuildsSeen/scorePatchesSeen are the session's ScoreIndexStats
	// values already folded into the manager's cumulative counters, like
	// emSeen — but atomics, because selections fold them while holding only
	// the entry's read lock (addMonotone makes concurrent folds exact).
	scoreBuildsSeen  atomic.Int64
	scorePatchesSeen atomic.Int64
	// log is the session's write-ahead log state; nil when the manager runs
	// without a WAL. It is guarded by mu like sess: every append runs inside
	// the session's write critical section, which is what keeps log order
	// identical to apply order.
	log *sessionWAL
	// replicaLSN tracks the stream position of a followed session when no WAL
	// records it (with one, the log's own LSN is authoritative). Guarded by mu.
	replicaLSN uint64

	bytes   int64 // last accounted MemoryEstimate; 0 while parked
	parking bool  // selected as an eviction victim, park in flight
	// budgetRemaining is the session's monetary budget remaining as last
	// folded into the manager's sum; guarded by the manager's mu like bytes.
	// It survives parking — a parked tenant's budget is still outstanding.
	budgetRemaining float64
	// parkedAccounted mirrors isParked under the manager's mu, so listings
	// and stats never have to touch an entry lock (which an in-flight EM
	// re-aggregation may hold for a long time).
	parkedAccounted bool
	elem            *list.Element

	// ingestMu guards ingestQueue: tickets of ingest requests waiting to be
	// applied. It is a leaf lock, never held while taking mu or the
	// manager's mu.
	ingestMu    sync.Mutex
	ingestQueue []*ingestTicket
}

// ingestTicket is one queued ingest request. Whichever requester first wins
// the session's write lock drains the whole queue in one merged AddAnswers
// call and resolves every drained ticket through its channel.
type ingestTicket struct {
	answers []crowdval.Answer
	done    chan ingestOutcome
}

// ingestOutcome is the per-ticket result of a (possibly coalesced) ingest.
type ingestOutcome struct {
	total int // session answer count after the batch that carried this ticket
	err   error
}

// NewManager prepares a session manager, creating the park (and, when
// durability is enabled, WAL) directories if needed. A manager with a WALDir
// does not recover leftover logs on its own — call Recover before serving to
// rebuild the sessions of a crashed predecessor.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.ParkDir == "" {
		return nil, fmt.Errorf("server: ManagerConfig.ParkDir is required")
	}
	if err := os.MkdirAll(cfg.ParkDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating park directory: %w", err)
	}
	ckptEvery := cfg.CheckpointEvery
	if cfg.WALDir != "" {
		if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: creating WAL directory: %w", err)
		}
		if ckptEvery == 0 {
			ckptEvery = DefaultCheckpointEvery
		}
	}
	return &Manager{
		budget:       cfg.MemoryBudget,
		dir:          cfg.ParkDir,
		walDir:       cfg.WALDir,
		walSync:      cfg.WALSync,
		ckptEvery:    ckptEvery,
		maxIngestQ:   cfg.MaxQueuedIngest,
		walFlushEach: cfg.WALFlushEachRecord,
		injector:     cfg.FaultInjector,
		sessions:     make(map[string]*entry),
		lru:          list.New(),
	}, nil
}

// ValidateSessionName reports whether a name is acceptable: 1–128 characters
// from [A-Za-z0-9._-], starting with a letter or digit. The restriction keeps
// names directly usable as park file names and URL path segments. Failures
// are client errors (the HTTP layer maps them to 400).
func ValidateSessionName(name string) error {
	if len(name) == 0 || len(name) > 128 {
		return &badRequestError{msg: "server: session name must have 1-128 characters"}
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return &badRequestError{msg: fmt.Sprintf("server: session name %q may only contain letters, digits, '.', '_' and '-', starting with a letter or digit", name)}
		}
	}
	return nil
}

func (m *Manager) parkPath(name string) string {
	return filepath.Join(m.dir, name+".cvsn")
}

// Create builds a new session under the given name. The context bounds the
// initial cold aggregation, the dominant cost of session creation.
func (m *Manager) Create(ctx context.Context, name string, answers *crowdval.AnswerSet, opts ...crowdval.Option) error {
	return m.install(name, func() (*crowdval.Session, error) {
		return crowdval.NewSession(answers, append(append([]crowdval.Option(nil), opts...), crowdval.WithContext(ctx))...)
	})
}

// CreateFromSnapshot installs a session resumed from an encoded snapshot
// stream under the given name — the explicit resume path, e.g. for migrating
// a session from another process.
func (m *Manager) CreateFromSnapshot(ctx context.Context, name string, r io.Reader, opts ...crowdval.Option) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return m.install(name, func() (*crowdval.Session, error) {
		return crowdval.ResumeSessionFrom(r, opts...)
	})
}

// install reserves the name with a placeholder entry, builds the session
// outside every lock except the entry's own, and either publishes it or rolls
// the reservation back. Concurrent operations on the same name block on the
// entry lock until the creation settles.
func (m *Manager) install(name string, build func() (*crowdval.Session, error)) error {
	if err := ValidateSessionName(name); err != nil {
		return err
	}
	e := &entry{name: name}
	e.mu.Lock()
	m.mu.Lock()
	if _, exists := m.sessions[name]; exists {
		m.mu.Unlock()
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", cverr.ErrSessionExists, name)
	}
	m.sessions[name] = e
	e.elem = m.lru.PushFront(e)
	m.mu.Unlock()

	sess, err := build()
	var w *sessionWAL
	if err == nil && m.walDir != "" {
		// Log-before-serve: the creation is durable (a create record carrying
		// the fresh snapshot) before the name is published, so no acknowledged
		// creation can be lost to a crash.
		w, err = m.createWAL(name, sess)
	}
	if err != nil {
		e.deleted = true
		e.mu.Unlock()
		m.mu.Lock()
		delete(m.sessions, name)
		m.lru.Remove(e.elem)
		m.mu.Unlock()
		return err
	}
	e.sess = sess
	e.log = w
	victims := m.settle(e)
	e.mu.Unlock()
	m.parkAll(victims)
	return nil
}

// Delete removes a session and its park file, if any. In-flight operations
// on the session finish first; the name stays reserved (creations of the
// same name fail with ErrSessionExists) until the deletion completes, so the
// park file is always removed while this entry still owns it — a same-name
// session created afterwards can never lose its own park file to a stale
// Delete.
func (m *Manager) Delete(name string) error {
	m.mu.Lock()
	e, ok := m.sessions[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", cverr.ErrSessionNotFound, name)
	}
	m.mu.Unlock()

	e.mu.Lock()
	if e.deleted {
		// A concurrent Delete won the race for this entry.
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", cverr.ErrSessionNotFound, name)
	}
	wasParked := e.isParked
	e.deleted = true
	e.sess = nil
	e.isParked = false
	if e.log != nil {
		e.log.close()
		e.log = nil
	}
	m.removeWALFiles(name)
	_ = os.Remove(m.parkPath(name))
	e.mu.Unlock()

	m.mu.Lock()
	if cur, ok := m.sessions[name]; ok && cur == e {
		delete(m.sessions, name)
		m.lru.Remove(e.elem)
	}
	m.resident -= e.bytes
	e.bytes = 0
	e.parkedAccounted = false
	m.budgetRemaining -= e.budgetRemaining
	e.budgetRemaining = 0
	if wasParked {
		m.parked--
	}
	m.mu.Unlock()
	return nil
}

// lookup finds the entry for a name and marks it most recently used.
func (m *Manager) lookup(name string) (*entry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.sessions[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", cverr.ErrSessionNotFound, name)
	}
	m.lru.MoveToFront(e.elem)
	return e, nil
}

// update runs fn with exclusive access to the named session, transparently
// resuming it from its park file when it is parked. Afterwards the session's
// memory estimate is re-accounted and, when the budget is exceeded, cold
// sessions are parked (never the one just used).
func (m *Manager) update(ctx context.Context, name string, fn func(*crowdval.Session) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e, err := m.lookup(name)
	if err != nil {
		return err
	}
	return m.exclusive(e, name, fn)
}

// updateLogged is update with the log-before-apply discipline: rec is
// appended to the session's WAL (when one is configured) before fn runs, a
// failed append skips fn entirely, and a checkpoint is taken afterwards when
// due. fn's own error does not suppress the logged record — replaying a
// record whose application failed re-fails deterministically, because the
// library rejects invalid mutations without mutating.
//
// fn receives the context to apply the mutation under, not the request's
// context verbatim: once the record is logged it WILL be replayed after a
// crash, so the live apply must not be abortable by the request's
// cancellation — a mutation rolled back on a client timeout would resurrect
// during recovery and diverge recovered state from live state. Cancellation
// still rejects the request cleanly before anything is logged.
func (m *Manager) updateLogged(ctx context.Context, name string, rec wal.Record, fn func(context.Context, *crowdval.Session) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e, err := m.lookup(name)
	if err != nil {
		return err
	}
	return m.exclusive(e, name, func(s *crowdval.Session) error {
		if err := m.logMutation(e, rec); err != nil {
			return err
		}
		applyCtx := ctx
		if e.log != nil {
			applyCtx = context.WithoutCancel(ctx)
		}
		opErr := fn(applyCtx, s)
		m.maybeCheckpoint(e)
		return opErr
	})
}

// exclusive is the shared write path behind update and view's parked-session
// fallback: lock the entry, resume it if parked, run fn, re-account and park
// budget victims.
func (m *Manager) exclusive(e *entry, name string, fn func(*crowdval.Session) error) error {
	e.mu.Lock()
	if e.deleted {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", cverr.ErrSessionNotFound, name)
	}
	if e.sess == nil {
		if err := m.unpark(e); err != nil {
			e.mu.Unlock()
			return err
		}
	}
	opErr := fn(e.sess)
	victims := m.settle(e)
	e.mu.Unlock()
	m.parkAll(victims)
	return opErr
}

// view runs fn with shared access to the named session: concurrent view calls
// on the same resident session proceed in parallel, and only a parked session
// falls back to the exclusive path so it can be resumed (after which it stays
// resident for subsequent reads).
func (m *Manager) view(ctx context.Context, name string, fn func(*crowdval.Session) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e, err := m.lookup(name)
	if err != nil {
		return err
	}
	e.mu.RLock()
	if e.deleted {
		e.mu.RUnlock()
		return fmt.Errorf("%w: %q", cverr.ErrSessionNotFound, name)
	}
	if e.sess != nil {
		defer e.mu.RUnlock()
		err := fn(e.sess)
		m.accountScoreIndex(e, e.sess)
		return err
	}
	e.mu.RUnlock()
	return m.exclusive(e, name, fn)
}

// accountScoreIndex folds a session's cumulative score-index build/patch
// counts into the manager's counters. It runs on the shared view path (read
// lock held), so the folding is CAS-monotone rather than mu-guarded.
func (m *Manager) accountScoreIndex(e *entry, sess *crowdval.Session) {
	builds, patches := sess.ScoreIndexStats()
	addMonotone(&e.scoreBuildsSeen, &m.scoreIndexBuilds, int64(builds))
	addMonotone(&e.scorePatchesSeen, &m.scoreIndexPatches, int64(patches))
}

// addMonotone folds a session's monotone cumulative counter value cur into
// total, with seen remembering how much of cur is already folded in. Safe for
// concurrent callers: the CAS guarantees each increment of cur is added to
// total exactly once, and callers observing a stale (smaller) cur drop out.
func addMonotone(seen, total *atomic.Int64, cur int64) {
	for {
		s := seen.Load()
		if cur <= s {
			return
		}
		if seen.CompareAndSwap(s, cur) {
			total.Add(cur - s)
			return
		}
	}
}

// unpark resumes a parked session from its park file. The caller holds the
// entry's write lock.
func (m *Manager) unpark(e *entry) error {
	path := m.parkPath(e.name)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("server: unparking session %q: %w", e.name, err)
	}
	sess, err := crowdval.ResumeSessionFrom(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("server: unparking session %q: %w", e.name, err)
	}
	_ = os.Remove(path)
	e.sess = sess
	e.isParked = false
	e.emSeen = 0
	e.deltaSeen = 0
	e.scoreBuildsSeen.Store(0)
	e.scorePatchesSeen.Store(0)
	m.mu.Lock()
	e.bytes = sess.MemoryEstimate()
	m.resident += e.bytes
	e.parkedAccounted = false
	m.parked--
	m.resumes++
	m.mu.Unlock()
	return nil
}

// settle re-accounts a session after an operation — memory estimate and EM
// iteration delta — and selects eviction victims if the budget is exceeded.
// The caller holds the entry's write lock and must park the returned victims
// after releasing it (parking locks other entries; doing it while holding
// this one could deadlock two settles picking each other's entry).
func (m *Manager) settle(e *entry) []*entry {
	cur := e.sess.TotalEMIterations()
	dcur := e.sess.TotalDeltaIterations()
	size := e.sess.MemoryEstimate()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.emIters += int64(cur - e.emSeen)
	e.emSeen = cur
	m.deltaIters += int64(dcur - e.deltaSeen)
	e.deltaSeen = dcur
	m.accountScoreIndex(e, e.sess)
	rem := 0.0
	if t, ok := e.sess.CostBudget(); ok {
		rem = t.Remaining()
	}
	m.budgetRemaining += rem - e.budgetRemaining
	e.budgetRemaining = rem
	m.resident += size - e.bytes
	e.bytes = size
	if m.budget <= 0 {
		return nil
	}
	var victims []*entry
	over := m.resident - m.budget
	for el := m.lru.Back(); el != nil && over > 0; el = el.Prev() {
		v := el.Value.(*entry)
		if v == e || v.parking || v.bytes == 0 {
			continue
		}
		v.parking = true
		over -= v.bytes
		victims = append(victims, v)
	}
	return victims
}

func (m *Manager) parkAll(victims []*entry) {
	for _, v := range victims {
		m.park(v)
	}
}

// park snapshots a victim to disk and drops it from memory. A session that
// was deleted, already parked, or cannot be snapshotted stays as it is.
func (m *Manager) park(v *entry) {
	v.mu.Lock()
	if v.deleted || v.sess == nil {
		v.mu.Unlock()
		m.mu.Lock()
		v.parking = false
		m.mu.Unlock()
		return
	}
	err := m.writeParkFile(v)
	if err == nil {
		v.sess = nil
		v.isParked = true
	}
	v.mu.Unlock()

	m.mu.Lock()
	v.parking = false
	if err == nil {
		m.resident -= v.bytes
		v.bytes = 0
		v.parkedAccounted = true
		m.parked++
		m.evictions++
	}
	m.mu.Unlock()
}

// writeParkFile writes the session snapshot atomically: stream to a
// temporary file, fsync-free rename into place. The caller holds the entry's
// write lock.
func (m *Manager) writeParkFile(v *entry) error {
	path := m.parkPath(v.name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := v.sess.SnapshotTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// AddAnswers folds new crowd answers into the named session (see
// Session.AddAnswers) and returns the session's total answer count.
//
// Concurrent AddAnswers calls for the same session queue tickets, and
// whichever request first acquires the session's write lock drains the
// whole queue. For sessions on the delta-incremental path
// (WithDeltaIngest) the drained tickets are merged into one batch — a
// single delta re-aggregation instead of one per request — so requests that
// piled up behind a slow aggregation ride along for free; that is what
// keeps small-batch ingest throughput from collapsing under concurrency.
// Full-path sessions are drained one ticket at a time in arrival order,
// preserving the documented bit-for-bit equivalence with a serial replay of
// the individual requests. Work done on behalf of other requests (merged
// batches, foreign tickets) deliberately ignores the drainer's own request
// cancellation; a request whose answers were merged observes the merged
// batch's outcome.
func (m *Manager) AddAnswers(ctx context.Context, name string, answers []crowdval.Answer) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	e, err := m.lookup(name)
	if err != nil {
		return 0, err
	}
	t := &ingestTicket{answers: answers, done: make(chan ingestOutcome, 1)}
	e.ingestMu.Lock()
	if m.maxIngestQ > 0 && len(e.ingestQueue) >= m.maxIngestQ {
		e.ingestMu.Unlock()
		m.shed.Add(1)
		return 0, fmt.Errorf("%w: session %q has %d queued ingest requests", cverr.ErrOverloaded, name, m.maxIngestQ)
	}
	e.ingestQueue = append(e.ingestQueue, t)
	e.ingestMu.Unlock()

	if err := m.exclusive(e, name, func(s *crowdval.Session) error {
		m.drainIngest(ctx, t, e, s)
		return nil
	}); err != nil {
		// The session vanished (deleted) or could not be resumed — no drain
		// ran on this path. Fail only our own ticket (if an earlier drainer
		// has not already resolved it): other queued tickets belong to
		// requests whose own exclusive() attempt may still succeed, e.g.
		// after a transient unpark failure.
		m.failOwnIngest(e, t, err)
	}

	// Guaranteed to be resolved by now: either a drainer (possibly this
	// call) consumed the ticket under the write lock, or the failure path
	// above flushed the queue.
	out := <-t.done
	if out.err != nil {
		return 0, out.err
	}
	return out.total, nil
}

// drainIngest applies every queued ingest ticket of the entry — merged into
// one batch for delta sessions, one at a time in arrival order for
// full-path sessions — and resolves the tickets. It runs under the entry's
// write lock; the queue take is atomic, so no ticket is ever drained twice.
// own is the drainer's ticket: only that ticket's work may run under the
// drainer's cancellable ctx — and only when no WAL is configured, see
// ticketCtx — everything done on behalf of other requests runs
// cancellation-free (a drained queue can hold foreign tickets even when it
// has length one — the drainer's own may have been drained by an earlier
// lock holder).
func (m *Manager) drainIngest(ctx context.Context, own *ingestTicket, e *entry, s *crowdval.Session) {
	e.ingestMu.Lock()
	tickets := e.ingestQueue
	e.ingestQueue = nil
	e.ingestMu.Unlock()
	if len(tickets) == 0 {
		return
	}
	// With a WAL configured even the drainer's own ticket applies
	// cancellation-free: its record is logged (and will be replayed after a
	// crash) before AddAnswers runs, so a cancellation rollback of the live
	// apply would diverge recovered state from live state.
	ticketCtx := func(t *ingestTicket) context.Context {
		if t == own && e.log == nil {
			return ctx
		}
		return context.WithoutCancel(ctx)
	}

	// Coalescing changes the aggregation trajectory (one warm EM over the
	// union instead of one per batch), which is only on the table for
	// sessions that opted out of bit-for-bit replay equivalence via the
	// delta path. Full-path sessions drain sequentially.
	if len(tickets) == 1 || !s.DeltaIngestEnabled() {
		for _, t := range tickets {
			err := m.logMutation(e, answersRecord(t.answers))
			if err == nil {
				err = s.AddAnswers(ticketCtx(t), t.answers)
				m.accountIngest(1, 0, ingestedOnSuccess(err, len(t.answers)))
			}
			t.done <- ingestOutcome{total: s.AnswerCount(), err: err}
		}
		m.maybeCheckpoint(e)
		return
	}

	// Merged batch. It is applied under a cancellation-free context: the
	// work belongs to every merged client, not just the drainer, so one
	// client disconnecting must not abort the others' ingest mid-flight.
	merged := 0
	for _, t := range tickets {
		merged += len(t.answers)
	}
	batch := make([]crowdval.Answer, 0, merged)
	for _, t := range tickets {
		batch = append(batch, t.answers...)
	}
	// The WAL gets the *merged* batch — exactly what the live session is
	// about to apply — so replay walks the same aggregation trajectory. A log
	// failure fails every merged request; nothing was applied.
	if err := m.logMutation(e, answersRecord(batch)); err != nil {
		for _, t := range tickets {
			t.done <- ingestOutcome{err: err}
		}
		return
	}
	err := s.AddAnswers(context.WithoutCancel(ctx), batch)
	if err == nil {
		total := s.AnswerCount()
		m.accountIngest(1, int64(len(tickets)-1), int64(merged))
		for _, t := range tickets {
			t.done <- ingestOutcome{total: total}
		}
		m.maybeCheckpoint(e)
		return
	}
	// Session.AddAnswers validates every answer before mutating anything, so
	// a merged failure means some request carried an invalid answer and the
	// session is untouched. Re-apply per ticket: the error lands on the
	// request that caused it and the valid requests still go through. Each
	// retry is logged individually; the already-logged merged record replays
	// against the same pre-batch state and re-fails deterministically, so the
	// log still prescribes exactly the applied mutations.
	for _, t := range tickets {
		terr := m.logMutation(e, answersRecord(t.answers))
		if terr == nil {
			terr = s.AddAnswers(context.WithoutCancel(ctx), t.answers)
			m.accountIngest(1, 0, ingestedOnSuccess(terr, len(t.answers)))
		}
		t.done <- ingestOutcome{total: s.AnswerCount(), err: terr}
	}
	m.maybeCheckpoint(e)
}

// failOwnIngest removes the caller's own ticket from the queue and resolves
// it with err. A ticket no longer queued was already resolved by a drainer,
// whose outcome stands; tickets of other requests are left queued for their
// owners' own lock attempts.
func (m *Manager) failOwnIngest(e *entry, own *ingestTicket, err error) {
	e.ingestMu.Lock()
	for i, t := range e.ingestQueue {
		if t == own {
			e.ingestQueue = append(e.ingestQueue[:i], e.ingestQueue[i+1:]...)
			e.ingestMu.Unlock()
			own.done <- ingestOutcome{err: err}
			return
		}
	}
	e.ingestMu.Unlock()
}

// accountIngest updates the ingest counters: batches actually executed,
// requests that rode along in someone else's batch, answers ingested.
func (m *Manager) accountIngest(batches, coalesced, answers int64) {
	m.mu.Lock()
	m.ingestBatches += batches
	m.coalesced += coalesced
	m.ingested += answers
	m.mu.Unlock()
}

func ingestedOnSuccess(err error, n int) int64 {
	if err != nil {
		return 0
	}
	return int64(n)
}

// NextObject returns the object the expert should validate next. Candidate
// scoring is read-only session state access, so it is served under the
// session's read lock: concurrent NextObject calls and result views proceed
// in parallel instead of queueing behind the single-writer lock, and only
// the strategy's tiny stateful prologue (the hybrid roulette draw) is
// serialized inside the session itself.
func (m *Manager) NextObject(ctx context.Context, name string) (int, error) {
	var object int
	err := m.view(ctx, name, func(s *crowdval.Session) error {
		var err error
		object, err = s.NextObjectContext(ctx)
		return err
	})
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	m.selections++
	m.mu.Unlock()
	return object, nil
}

// NextObjects returns the top k ranked candidates for the next expert
// validation in one scoring pass (see Session.NextObjectsContext). Like
// NextObject it is served under the session's read lock.
func (m *Manager) NextObjects(ctx context.Context, name string, k int) ([]crowdval.ScoredObject, error) {
	var ranked []crowdval.ScoredObject
	err := m.view(ctx, name, func(s *crowdval.Session) error {
		var err error
		ranked, err = s.NextObjectsContext(ctx, k)
		return err
	})
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.selections++
	m.mu.Unlock()
	return ranked, nil
}

// GlobalNext is the marketplace read path: it ranks the next expert
// validations across *all* managed sessions and returns the global top k by
// expected information gain per unit cost. Each resident session is scored
// under its shared read lock with the cheap maintained-index NextObjects
// pass, scores are normalized by the session's monetary budget tracker
// (gain/θ; sessions without a budget use the default expert-to-crowd cost
// ratio), exhausted tenants are skipped, and the partial rankings merge
// under a total order — gain/cost descending, ties broken by session name
// then object ascending — so the result is deterministic and independent of
// enumeration order. Parked sessions are skipped unless includeParked is
// set, in which case they are resumed (counted as Resumes) and scored too.
//
// Sessions that currently have nothing to offer — done, effort budget
// spent, no candidates — contribute nothing rather than failing the global
// answer; only cancellation and infrastructure errors abort.
func (m *Manager) GlobalNext(ctx context.Context, k int, includeParked bool) ([]crowdval.GlobalNextCandidate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, &badRequestError{msg: "server: global next needs k >= 1"}
	}
	m.mu.Lock()
	entries := make([]*entry, 0, len(m.sessions))
	for _, e := range m.sessions {
		entries = append(entries, e)
	}
	m.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	var cands []crowdval.GlobalNextCandidate
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		per, err := m.sessionCandidates(ctx, e, k, includeParked)
		if err != nil {
			return nil, err
		}
		cands = append(cands, per...)
	}
	m.globalSelections.Add(1)
	return crowdval.MergeGlobalNext(cands, k), nil
}

// sessionCandidates scores one session's top-k candidates for the global
// ranking, normalized to gain per unit cost. A resident session is read
// under the shared lock; a parked one is skipped or resumed per
// resumeParked. Deleted sessions and benign per-session exhaustion yield no
// candidates and no error.
func (m *Manager) sessionCandidates(ctx context.Context, e *entry, k int, resumeParked bool) ([]crowdval.GlobalNextCandidate, error) {
	var out []crowdval.GlobalNextCandidate
	fn := func(s *crowdval.Session) error {
		tracker, hasBudget := s.CostBudget()
		if hasBudget && tracker.Exhausted() {
			return nil
		}
		ranked, err := s.NextObjectsContext(ctx, k)
		if err != nil {
			if errors.Is(err, cverr.ErrSessionDone) || errors.Is(err, cverr.ErrNoCandidates) ||
				errors.Is(err, cverr.ErrBudgetExhausted) {
				return nil
			}
			return err
		}
		for _, so := range ranked {
			gpc := so.Score / crowdval.DefaultExpertCrowdCostRatio
			if hasBudget {
				gpc = tracker.GainPerCost(so.Score)
			}
			out = append(out, crowdval.GlobalNextCandidate{
				Session:     e.name,
				Object:      so.Object,
				Gain:        so.Score,
				GainPerCost: gpc,
			})
		}
		return nil
	}

	e.mu.RLock()
	if e.deleted {
		e.mu.RUnlock()
		return nil, nil
	}
	if e.sess != nil {
		err := fn(e.sess)
		m.accountScoreIndex(e, e.sess)
		e.mu.RUnlock()
		return out, err
	}
	e.mu.RUnlock()
	if !resumeParked {
		return nil, nil
	}
	err := m.exclusive(e, e.name, fn)
	if errors.Is(err, cverr.ErrSessionNotFound) {
		return nil, nil // deleted while we waited
	}
	return out, err
}

// SetBudget installs or replaces the monetary budget of the named session
// (see crowdval.Session.SetCostBudget: validations already spent are kept).
// The change is logged to the session's WAL before it applies, like every
// other mutation, so budget state survives a crash exactly.
func (m *Manager) SetBudget(ctx context.Context, name string, t crowdval.CostTracker) error {
	return m.updateLogged(ctx, name, budgetRecord(t), func(ctx context.Context, s *crowdval.Session) error {
		s.SetCostBudget(t)
		return nil
	})
}

// Submit integrates one expert validation.
func (m *Manager) Submit(ctx context.Context, name string, object int, label crowdval.Label) (crowdval.StepInfo, error) {
	var info crowdval.StepInfo
	err := m.updateLogged(ctx, name, submitRecord(object, label), func(ctx context.Context, s *crowdval.Session) error {
		var err error
		info, err = s.SubmitValidationContext(ctx, object, label)
		return err
	})
	if err != nil {
		return crowdval.StepInfo{}, err
	}
	m.mu.Lock()
	m.validations++
	m.mu.Unlock()
	return info, nil
}

// SubmitBatch integrates a whole batch of expert validations transactionally
// (see Session.SubmitValidations).
func (m *Manager) SubmitBatch(ctx context.Context, name string, inputs []crowdval.ValidationInput) ([]crowdval.StepInfo, error) {
	var infos []crowdval.StepInfo
	err := m.updateLogged(ctx, name, submitBatchRecord(inputs), func(ctx context.Context, s *crowdval.Session) error {
		var err error
		infos, err = s.SubmitValidations(ctx, inputs)
		return err
	})
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.validations += int64(len(inputs))
	m.mu.Unlock()
	return infos, nil
}

// Snapshot returns the session's encoded snapshot. A parked session is
// served straight from its park file without being resumed — explicitly
// snapshotting cold sessions (e.g. for backup or migration) costs one file
// read, not a resume/re-park cycle. The bytes are materialized under the
// session lock and returned, so callers can stream them to arbitrarily slow
// destinations without stalling the session's writers.
func (m *Manager) Snapshot(ctx context.Context, name string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e, err := m.lookup(name)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	if e.deleted {
		e.mu.RUnlock()
		return nil, fmt.Errorf("%w: %q", cverr.ErrSessionNotFound, name)
	}
	if e.sess != nil {
		defer e.mu.RUnlock()
		return e.sess.Snapshot()
	}
	if e.isParked {
		defer e.mu.RUnlock()
		data, err := os.ReadFile(m.parkPath(e.name))
		if err != nil {
			return nil, fmt.Errorf("server: reading park file of %q: %w", name, err)
		}
		return data, nil
	}
	e.mu.RUnlock()
	// Mid-creation placeholder: fall back to the shared view path, which
	// waits for the creation to settle.
	var data []byte
	err = m.view(ctx, name, func(s *crowdval.Session) error {
		data, err = s.Snapshot()
		return err
	})
	return data, err
}

// View runs fn with shared (read) access to the named session, resuming it
// transparently when parked. fn must not mutate the session; writer
// operations go through the typed methods above.
func (m *Manager) View(ctx context.Context, name string, fn func(*crowdval.Session) error) error {
	return m.view(ctx, name, fn)
}

// SessionInfo describes one managed session for listings.
type SessionInfo struct {
	Name   string `json:"name"`
	Parked bool   `json:"parked"`
	Bytes  int64  `json:"bytes"`
}

// Sessions lists the managed sessions in most-recently-used order. It reads
// only manager-guarded state, so a listing never waits behind an in-flight
// session operation.
func (m *Manager) Sessions() []SessionInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	infos := make([]SessionInfo, 0, m.lru.Len())
	for el := m.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		infos = append(infos, SessionInfo{Name: e.name, Parked: e.parkedAccounted, Bytes: e.bytes})
	}
	return infos
}

// Stats is the manager's aggregate state for the metrics endpoint.
type Stats struct {
	// Sessions is the total number of managed sessions; Resident of them are
	// in memory and Parked on disk.
	Sessions int64 `json:"sessions"`
	Resident int64 `json:"resident"`
	Parked   int64 `json:"parked"`
	// ResidentBytes is the estimated memory of resident session state;
	// MemoryBudget is the configured cap (0 = unlimited).
	ResidentBytes int64 `json:"residentBytes"`
	MemoryBudget  int64 `json:"memoryBudget"`
	// Cumulative operation counters. IngestBatches counts the AddAnswers
	// calls actually executed against sessions; CoalescedIngests counts the
	// ingest requests that were merged into another request's batch, so
	// requests = IngestBatches + CoalescedIngests (modulo per-ticket
	// fallbacks after a rejected merge).
	IngestedAnswers      int64 `json:"ingestedAnswers"`
	IngestBatches        int64 `json:"ingestBatches"`
	CoalescedIngests     int64 `json:"coalescedIngests"`
	SubmittedValidations int64 `json:"submittedValidations"`
	Selections           int64 `json:"selections"`
	// GlobalSelections counts served marketplace reads (GET /v1/next), each
	// of which merges per-session rankings into one global answer.
	GlobalSelections int64 `json:"globalSelections"`
	// BudgetRemaining is the summed monetary budget remaining across all
	// budgeted sessions (θ · validations still affordable, bounded by the
	// configured totals). Sessions without a cost budget contribute zero.
	BudgetRemaining float64 `json:"budgetRemaining"`
	Evictions       int64   `json:"evictions"`
	Resumes         int64   `json:"resumes"`
	EMIterations    int64   `json:"emIterations"`
	// DeltaIterations is the cumulative count of frontier-restricted
	// iterations run by delta-incremental sessions (see WithDeltaIngest).
	DeltaIterations int64 `json:"deltaIterations"`
	// ShedIngests counts AddAnswers requests rejected with ErrOverloaded
	// because a session's ingest queue was at its configured bound.
	ShedIngests int64 `json:"shedIngests"`
	// ScoreIndexBuilds/ScoreIndexPatches count, across all sessions, how
	// often a selection built the guidance scoring index from scratch versus
	// patching the maintained one in place (the incremental-view path); a
	// patch-dominated ratio means selections are being served at cost
	// proportional to what each ingest changed.
	ScoreIndexBuilds  int64 `json:"scoreIndexBuilds"`
	ScoreIndexPatches int64 `json:"scoreIndexPatches"`
	// Durability counters; all zero when the manager runs without a WAL.
	// WALRecords/WALBytes/WALSyncs are cumulative appender totals across all
	// sessions; Checkpoints/CheckpointFailures count snapshot-checkpoint
	// rotations; RecoveredSessions/ReplayedRecords describe the crash
	// recovery this process performed at boot.
	WALRecords         int64 `json:"walRecords"`
	WALBytes           int64 `json:"walBytes"`
	WALSyncs           int64 `json:"walSyncs"`
	Checkpoints        int64 `json:"checkpoints"`
	CheckpointFailures int64 `json:"checkpointFailures"`
	RecoveredSessions  int64 `json:"recoveredSessions"`
	ReplayedRecords    int64 `json:"replayedRecords"`
	// Health state machine (see health.go). WALDegradedSessions and
	// WALFailStopSessions are current-state gauges; DegradeEvents, WALHeals,
	// ProbeFailures and ENOSPCReclaims are cumulative counters. A reclaim is
	// a full-disk append that recovered by checkpoint-and-truncate without
	// ever degrading.
	WALDegradedSessions int64 `json:"walDegradedSessions"`
	WALFailStopSessions int64 `json:"walFailStopSessions"`
	DegradeEvents       int64 `json:"degradeEvents"`
	WALHeals            int64 `json:"walHeals"`
	ProbeFailures       int64 `json:"probeFailures"`
	ENOSPCReclaims      int64 `json:"enospcReclaims"`
}

// Stats returns a consistent snapshot of the manager's aggregate state. The
// durability counters are atomics sampled individually — a scrape never
// waits behind an in-flight fsync — so they can trail the mu-guarded fields
// by a few operations; every counter is individually monotone.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		Sessions:             int64(len(m.sessions)),
		Resident:             int64(len(m.sessions)) - m.parked,
		Parked:               m.parked,
		ResidentBytes:        m.resident,
		MemoryBudget:         m.budget,
		IngestedAnswers:      m.ingested,
		IngestBatches:        m.ingestBatches,
		CoalescedIngests:     m.coalesced,
		SubmittedValidations: m.validations,
		Selections:           m.selections,
		Evictions:            m.evictions,
		Resumes:              m.resumes,
		EMIterations:         m.emIters,
		DeltaIterations:      m.deltaIters,
		BudgetRemaining:      m.budgetRemaining,
	}
	m.mu.Unlock()
	s.GlobalSelections = m.globalSelections.Load()
	s.ShedIngests = m.shed.Load()
	s.ScoreIndexBuilds = m.scoreIndexBuilds.Load()
	s.ScoreIndexPatches = m.scoreIndexPatches.Load()
	s.WALRecords = m.walRecords.Load()
	s.WALBytes = m.walBytes.Load()
	s.WALSyncs = m.walSyncs.Load()
	s.Checkpoints = m.checkpoints.Load()
	s.CheckpointFailures = m.checkpointFails.Load()
	s.RecoveredSessions = m.recovered.Load()
	s.ReplayedRecords = m.replayed.Load()
	s.WALDegradedSessions = m.walDegraded.Load()
	s.WALFailStopSessions = m.walFailStop.Load()
	s.DegradeEvents = m.degradeEvents.Load()
	s.WALHeals = m.walHeals.Load()
	s.ProbeFailures = m.probeFailures.Load()
	s.ENOSPCReclaims = m.enospcReclaims.Load()
	return s
}
