package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"crowdval"
)

// globalOptions is the session shape the global-next tests use: the
// uncertainty strategy is deterministic and selection-free (no RNG draw per
// read), so concurrent ranked reads cannot perturb the session and a serial
// replica lands on identical scores.
func globalOptions(seed int64, costBudget, theta float64) SessionConfig {
	return SessionConfig{
		Strategy: string(crowdval.StrategyUncertainty), Seed: seed, CandidateLimit: 8,
		Delta: true, DeltaScoring: true,
		CostBudget: costBudget, CostTheta: theta,
	}
}

// serialGlobalMerge recomputes the global top-k the way the acceptance
// criterion prescribes: call per-session NextObjects serially, normalize each
// score through the session's own tracker, and merge. The replicas must be in
// the same state as the server-side sessions.
func serialGlobalMerge(t *testing.T, refs map[string]*crowdval.Session, k int) []GlobalCandidateJSON {
	t.Helper()
	var cands []crowdval.GlobalNextCandidate
	for name, ref := range refs {
		tracker, hasBudget := ref.CostBudget()
		if hasBudget && tracker.Exhausted() {
			continue
		}
		ranked, err := ref.NextObjects(k)
		if err != nil {
			t.Fatalf("serial NextObjects(%s): %v", name, err)
		}
		for _, so := range ranked {
			gpc := so.Score / crowdval.DefaultExpertCrowdCostRatio
			if hasBudget {
				gpc = tracker.GainPerCost(so.Score)
			}
			cands = append(cands, crowdval.GlobalNextCandidate{
				Session: name, Object: so.Object, Gain: so.Score, GainPerCost: gpc,
			})
		}
	}
	top := crowdval.MergeGlobalNext(cands, k)
	out := make([]GlobalCandidateJSON, len(top))
	for i, c := range top {
		out[i] = GlobalCandidateJSON{Session: c.Session, Object: c.Object, Gain: c.Gain, GainPerCost: c.GainPerCost}
	}
	return out
}

// checkGlobalOrder asserts the response honors the marketplace's total order:
// gain per cost descending, ties by session name then object ascending, at
// most k entries.
func checkGlobalOrder(resp GlobalNextResponse, k int) error {
	if len(resp.Candidates) > k {
		return fmt.Errorf("%d candidates for k=%d", len(resp.Candidates), k)
	}
	for i := 1; i < len(resp.Candidates); i++ {
		a, b := resp.Candidates[i-1], resp.Candidates[i]
		switch {
		case a.GainPerCost > b.GainPerCost:
		case a.GainPerCost < b.GainPerCost:
			return fmt.Errorf("gain/cost order violated at %d: %+v", i, resp.Candidates)
		case a.Session < b.Session:
		case a.Session > b.Session:
			return fmt.Errorf("session tie-break violated at %d: %+v", i, resp.Candidates)
		case a.Object >= b.Object:
			return fmt.Errorf("object tie-break violated at %d: %+v", i, resp.Candidates)
		}
	}
	return nil
}

// TestGlobalNextMatchesSerialMerge is the acceptance pin for the marketplace
// read path: GET /v1/next?k= must return exactly the ranking obtained by
// serially calling each session's NextObjects and merging the results —
// budgeted sessions normalized by their own θ, unbudgeted ones by the default
// expert/crowd cost ratio.
func TestGlobalNextMatchesSerialMerge(t *testing.T) {
	c, _ := newTestServer(t, 0)

	shapes := []struct {
		name          string
		seed          int64
		budget, theta float64
	}{
		{"alpha", 11, 500, 0}, // budgeted, default θ
		{"beta", 12, 250, 25}, // budgeted, expensive expert
		{"gamma", 13, 0, 0},   // unbudgeted: ranked at the default ratio
	}
	refs := make(map[string]*crowdval.Session)
	truths := make(map[string][]crowdval.Label)
	for _, sh := range shapes {
		d := testCrowd(t, 30, 8, sh.seed)
		options := globalOptions(sh.seed, sh.budget, sh.theta)
		c.must("POST", "/v1/sessions", CreateSessionRequest{
			Name: sh.name, Matrix: matrixOf(d.Answers), NumLabels: 2, Options: options,
		}, nil)
		answers, err := crowdval.NewAnswerSetFromMatrix(matrixOf(d.Answers), 2)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := crowdval.NewSession(answers, options.libraryOptions()...)
		if err != nil {
			t.Fatal(err)
		}
		refs[sh.name] = ref
		truths[sh.name] = d.Truth
	}

	// Skew the states: validate a few objects on alpha and beta, both through
	// the API and on the replicas.
	ctx := context.Background()
	for _, step := range []struct {
		session string
		objects []int
	}{{"alpha", []int{0, 1}}, {"beta", []int{2}}} {
		batch := make([]ValidationJSON, len(step.objects))
		serial := make([]crowdval.ValidationInput, len(step.objects))
		for j, o := range step.objects {
			batch[j] = ValidationJSON{Object: o, Label: int(truths[step.session][o])}
			serial[j] = crowdval.ValidationInput{Object: o, Label: truths[step.session][o]}
		}
		c.must("POST", "/v1/sessions/"+step.session+"/validations", SubmitRequest{Validations: batch}, nil)
		if _, err := refs[step.session].SubmitValidations(ctx, serial); err != nil {
			t.Fatal(err)
		}
	}

	for _, k := range []int{1, 3, 5, 10} {
		var resp GlobalNextResponse
		c.must("GET", fmt.Sprintf("/v1/next?k=%d", k), nil, &resp)
		if err := checkGlobalOrder(resp, k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := serialGlobalMerge(t, refs, k)
		got, err := json.Marshal(resp.Candidates)
		if err != nil {
			t.Fatal(err)
		}
		wantRaw, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantRaw) {
			t.Fatalf("k=%d: global ranking differs from serial per-session merge:\n got %s\nwant %s", k, got, wantRaw)
		}
	}

	// Top candidates must span multiple sessions — otherwise this test only
	// exercised a single-session ranking with extra steps.
	var resp GlobalNextResponse
	c.must("GET", "/v1/next?k=10", nil, &resp)
	names := make(map[string]bool)
	for _, cand := range resp.Candidates {
		names[cand.Session] = true
	}
	if len(names) < 2 {
		t.Fatalf("global top-10 covers %d session(s), want several: %+v", len(names), resp.Candidates)
	}

	// k=0 is a client error, not an empty answer.
	if status, _ := c.do("GET", "/v1/next?k=0", nil, nil); status != http.StatusBadRequest {
		t.Fatalf("k=0: status %d, want 400", status)
	}
}

// TestGlobalNextParked pins the parked-session semantics: by default the
// marketplace ranks only resident sessions; ?parked=1 wakes parked ones so
// the answer covers every session of the node.
func TestGlobalNextParked(t *testing.T) {
	c, manager := newTestServer(t, 1) // 1-byte budget: sessions park immediately

	refs := make(map[string]*crowdval.Session)
	for i, name := range []string{"cold-a", "cold-b"} {
		d := testCrowd(t, 20, 6, int64(30+i))
		options := globalOptions(int64(30+i), 300, 0)
		c.must("POST", "/v1/sessions", CreateSessionRequest{
			Name: name, Matrix: matrixOf(d.Answers), NumLabels: 2, Options: options,
		}, nil)
		answers, err := crowdval.NewAnswerSetFromMatrix(matrixOf(d.Answers), 2)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := crowdval.NewSession(answers, options.libraryOptions()...)
		if err != nil {
			t.Fatal(err)
		}
		refs[name] = ref
	}
	if manager.Stats().Parked == 0 {
		t.Fatal("nothing parked under a 1-byte budget")
	}

	var woken GlobalNextResponse
	c.must("GET", "/v1/next?k=8&parked=1", nil, &woken)
	names := make(map[string]bool)
	for _, cand := range woken.Candidates {
		names[cand.Session] = true
	}
	if !names["cold-a"] || !names["cold-b"] {
		t.Fatalf("parked=1 did not cover both parked sessions: %+v", woken.Candidates)
	}
	want := serialGlobalMerge(t, refs, 8)
	got, _ := json.Marshal(woken.Candidates)
	wantRaw, _ := json.Marshal(want)
	if !bytes.Equal(got, wantRaw) {
		t.Fatalf("parked=1 ranking differs from serial merge:\n got %s\nwant %s", got, wantRaw)
	}

	// Default reads never wake a parked session: whatever is parked right now
	// must not show up, and the resume counter must not move.
	resumesBefore := manager.Stats().Resumes
	parkedNow := make(map[string]bool)
	for _, info := range manager.Sessions() {
		if info.Parked {
			parkedNow[info.Name] = true
		}
	}
	var resident GlobalNextResponse
	c.must("GET", "/v1/next?k=8", nil, &resident)
	for _, cand := range resident.Candidates {
		if parkedNow[cand.Session] {
			t.Fatalf("default read surfaced parked session %s: %+v", cand.Session, resident.Candidates)
		}
	}
	if got := manager.Stats().Resumes; got != resumesBefore {
		t.Fatalf("default global read resumed parked sessions (%d -> %d resumes)", resumesBefore, got)
	}
}

// TestGlobalNextChurnBitForBit extends the churn determinism contract to the
// manager level: four budgeted sessions take interleaved ingest and
// validation traffic under a 1-byte memory budget (so sessions constantly
// park and resume) while concurrent readers hammer GET /v1/next?parked=1 —
// every concurrent answer must honor the marketplace's total order, and the
// final global ranking must match a serial replay byte for byte. Run with
// -race in CI.
func TestGlobalNextChurnBitForBit(t *testing.T) {
	const numSessions = 4
	const steps = 12
	c, _ := newTestServer(t, 1)

	type plan struct {
		name    string
		dataset *crowdval.Dataset
		matrix  [][]int
		chunks  [][]crowdval.Answer
		options SessionConfig
	}
	plans := make([]*plan, numSessions)
	for i := range plans {
		d := testCrowd(t, 24, 8, int64(200+i))
		baseMatrix := matrixOf(d.Answers)
		var extras []crowdval.Answer
		for o := 0; o < d.Answers.NumObjects(); o++ {
			for w := 0; w < d.Answers.NumWorkers(); w++ {
				if baseMatrix[o][w] >= 0 && (o+w)%3 == 0 {
					extras = append(extras, crowdval.Answer{Object: o, Worker: w, Label: crowdval.Label(baseMatrix[o][w])})
					baseMatrix[o][w] = -1
				}
			}
		}
		chunks := make([][]crowdval.Answer, 3)
		for j, a := range extras {
			chunks[j%3] = append(chunks[j%3], a)
		}
		plans[i] = &plan{
			name:    fmt.Sprintf("g%d", i),
			dataset: d,
			matrix:  baseMatrix,
			chunks:  chunks,
			options: globalOptions(int64(20+i), 400+100*float64(i), 0),
		}
		c.must("POST", "/v1/sessions", CreateSessionRequest{
			Name: plans[i].name, Matrix: baseMatrix, NumLabels: 2, Options: plans[i].options,
		}, nil)
	}

	lowestUnvalidated := func(validated []int, total int) []int {
		isValidated := make(map[int]bool, len(validated))
		for _, o := range validated {
			isValidated[o] = true
		}
		for o := 0; o < total; o++ {
			if !isValidated[o] {
				return []int{o}
			}
		}
		return nil
	}

	errs := make(chan error, numSessions+4)
	var wg sync.WaitGroup
	var writers sync.WaitGroup
	done := make(chan struct{})

	for _, p := range plans {
		wg.Add(1)
		writers.Add(1)
		go func(p *plan) {
			defer wg.Done()
			defer writers.Done()
			for step := 0; step < steps; step++ {
				if step%4 == 0 && step/4 < len(p.chunks) {
					answers := make([]AnswerJSON, len(p.chunks[step/4]))
					for j, a := range p.chunks[step/4] {
						answers[j] = AnswerJSON{Object: a.Object, Worker: a.Worker, Label: int(a.Label)}
					}
					if status, e := c.do("POST", "/v1/sessions/"+p.name+"/answers", IngestRequest{Answers: answers}, nil); e != nil {
						errs <- fmt.Errorf("writer %s ingest step %d: status %d %+v", p.name, step, status, e)
						return
					}
					continue
				}
				var result ResultResponse
				if status, e := c.do("GET", "/v1/sessions/"+p.name+"/result", nil, &result); e != nil {
					errs <- fmt.Errorf("writer %s result step %d: status %d %+v", p.name, step, status, e)
					return
				}
				picks := lowestUnvalidated(result.Validated, result.Objects)
				batch := make([]ValidationJSON, len(picks))
				for j, o := range picks {
					batch[j] = ValidationJSON{Object: o, Label: int(p.dataset.Truth[o])}
				}
				if status, e := c.do("POST", "/v1/sessions/"+p.name+"/validations", SubmitRequest{Validations: batch}, nil); e != nil {
					errs <- fmt.Errorf("writer %s submit step %d: status %d %+v", p.name, step, status, e)
					return
				}
			}
		}(p)
	}
	go func() {
		writers.Wait()
		close(done)
	}()

	// Readers: concurrent global marketplace reads across the churn, waking
	// parked sessions, every answer checked against the ordering contract.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				k := 1 + (g+i)%5
				var resp GlobalNextResponse
				if status, e := c.do("GET", fmt.Sprintf("/v1/next?k=%d&parked=1", k), nil, &resp); e != nil {
					errs <- fmt.Errorf("global reader %d: status %d %+v", g, status, e)
					return
				}
				if err := checkGlobalOrder(resp, k); err != nil {
					errs <- fmt.Errorf("global reader %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Serial replay of each writer's sequence on plain sessions; the global
	// merge over the replicas must match the server's answer byte for byte.
	ctx := context.Background()
	refs := make(map[string]*crowdval.Session)
	for _, p := range plans {
		answers, err := crowdval.NewAnswerSetFromMatrix(p.matrix, 2)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := crowdval.NewSession(answers, p.options.libraryOptions()...)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < steps; step++ {
			if step%4 == 0 && step/4 < len(p.chunks) {
				if err := ref.AddAnswers(ctx, p.chunks[step/4]); err != nil {
					t.Fatalf("replay %s ingest step %d: %v", p.name, step, err)
				}
				continue
			}
			validation := ref.Validation()
			var validated []int
			for o := 0; o < ref.NumObjects(); o++ {
				if validation.Validated(o) {
					validated = append(validated, o)
				}
			}
			picks := lowestUnvalidated(validated, ref.NumObjects())
			batch := make([]crowdval.ValidationInput, len(picks))
			for j, o := range picks {
				batch[j] = crowdval.ValidationInput{Object: o, Label: p.dataset.Truth[o]}
			}
			if _, err := ref.SubmitValidations(ctx, batch); err != nil {
				t.Fatalf("replay %s submit step %d: %v", p.name, step, err)
			}
		}
		refs[p.name] = ref

		// Per-session state must also agree bit for bit (budget included):
		// the concurrent global reads must not have perturbed anything.
		want, err := ref.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if got := c.snapshotBytes(p.name); !bytes.Equal(got, want) {
			t.Fatalf("session %s: snapshot differs from serial replay (%d vs %d bytes)", p.name, len(got), len(want))
		}
	}
	var final GlobalNextResponse
	c.must("GET", "/v1/next?k=10&parked=1", nil, &final)
	want := serialGlobalMerge(t, refs, 10)
	got, _ := json.Marshal(final.Candidates)
	wantRaw, _ := json.Marshal(want)
	if !bytes.Equal(got, wantRaw) {
		t.Fatalf("final global ranking differs from serial replay:\n got %s\nwant %s", got, wantRaw)
	}
}

// TestBudgetExhaustionEndToEnd walks the budget lifecycle over the wire: a
// session funded for exactly two validations accepts two, refuses the third
// with HTTP 409 and the typed sentinel, disappears from the global
// marketplace while broke, and rejoins after POST .../budget refunds it —
// with the validations already spent preserved.
func TestBudgetExhaustionEndToEnd(t *testing.T) {
	c, _ := newTestServer(t, 0)
	d := testCrowd(t, 20, 8, 77)
	c.must("POST", "/v1/sessions", CreateSessionRequest{
		Name: "pay", Matrix: matrixOf(d.Answers), NumLabels: 2,
		Options: globalOptions(77, 25, 0), // θ defaults to 12.5: budget covers 2
	}, nil)

	submit := func(object int) (int, *ErrorResponse) {
		return c.do("POST", "/v1/sessions/pay/validations", SubmitRequest{
			Validations: []ValidationJSON{{Object: object, Label: int(d.Truth[object])}},
		}, nil)
	}
	for _, o := range []int{0, 1} {
		if status, e := submit(o); e != nil {
			t.Fatalf("funded submit of %d: status %d %+v", o, status, e)
		}
	}
	status, errResp := submit(2)
	if status != http.StatusConflict || errResp.Code != "ErrBudgetExhausted" {
		t.Fatalf("broke submit: status %d, %+v", status, errResp)
	}

	// An exhausted session has no claim on the global marketplace.
	var resp GlobalNextResponse
	c.must("GET", "/v1/next?k=5", nil, &resp)
	if len(resp.Candidates) != 0 {
		t.Fatalf("exhausted session still ranked globally: %+v", resp.Candidates)
	}

	// Refund via the budget endpoint: spent validations carry over.
	var budget BudgetResponse
	c.must("POST", "/v1/sessions/pay/budget", BudgetRequest{Budget: 100}, &budget)
	if budget.Spent != 2 || budget.Theta != crowdval.DefaultExpertCrowdCostRatio {
		t.Fatalf("budget after refund: %+v", budget)
	}
	if budget.Remaining != 75 || budget.FeasibleValidations != 6 || budget.Exhausted {
		t.Fatalf("budget math after refund: %+v", budget)
	}
	if status, e := submit(2); e != nil {
		t.Fatalf("refunded submit: status %d %+v", status, e)
	}
	c.must("GET", "/v1/next?k=5", nil, &resp)
	if len(resp.Candidates) == 0 || resp.Candidates[0].Session != "pay" {
		t.Fatalf("refunded session missing from the marketplace: %+v", resp.Candidates)
	}

	// A non-positive budget is a client error.
	if status, _ := c.do("POST", "/v1/sessions/pay/budget", BudgetRequest{Budget: 0}, nil); status != http.StatusBadRequest {
		t.Fatalf("zero budget: status %d, want 400", status)
	}

	// Observability: the JSON stats and the Prometheus exposition both carry
	// the marketplace counters and the summed remaining budget.
	var stats Stats
	c.must("GET", "/v1/metrics", nil, &stats)
	if stats.GlobalSelections < 2 {
		t.Fatalf("global selections not counted: %+v", stats)
	}
	if stats.BudgetRemaining != 62.5 {
		t.Fatalf("budget remaining = %g, want 62.5 (100 - 3·12.5)", stats.BudgetRemaining)
	}
	httpResp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"crowdval_global_selections_total", "crowdval_budget_remaining 62.5"} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("Prometheus exposition missing %q:\n%s", want, raw)
		}
	}
}
