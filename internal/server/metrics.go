package server

import (
	"fmt"
	"net/http"
	"strings"
)

// This file renders the manager statistics in the Prometheus text exposition
// format (version 0.0.4), served at GET /metrics alongside the JSON form at
// GET /v1/metrics. The scrape path reads only manager-guarded counters and
// lock-free atomics — it never touches an entry lock, so a scrape cannot
// queue behind an in-flight aggregation or fsync.

// promMetric is one exposed metric: name, type, help, and a getter against a
// Stats snapshot. Ratios (coalescing effectiveness, park/resume churn) are
// left to the scraper: counters stay raw so rate() works.
type promMetric struct {
	name  string
	typ   string // "counter" or "gauge"
	help  string
	value func(Stats) int64
}

var promMetrics = []promMetric{
	{"crowdval_sessions", "gauge", "Managed sessions.", func(s Stats) int64 { return s.Sessions }},
	{"crowdval_sessions_resident", "gauge", "Sessions resident in memory.", func(s Stats) int64 { return s.Resident }},
	{"crowdval_sessions_parked", "gauge", "Sessions parked to disk.", func(s Stats) int64 { return s.Parked }},
	{"crowdval_resident_bytes", "gauge", "Estimated bytes of resident session state.", func(s Stats) int64 { return s.ResidentBytes }},
	{"crowdval_memory_budget_bytes", "gauge", "Configured resident-memory budget (0 = unlimited).", func(s Stats) int64 { return s.MemoryBudget }},
	{"crowdval_ingested_answers_total", "counter", "Crowd answers ingested.", func(s Stats) int64 { return s.IngestedAnswers }},
	{"crowdval_ingest_batches_total", "counter", "AddAnswers batches executed against sessions.", func(s Stats) int64 { return s.IngestBatches }},
	{"crowdval_coalesced_ingests_total", "counter", "Ingest requests merged into another request's batch.", func(s Stats) int64 { return s.CoalescedIngests }},
	{"crowdval_shed_ingests_total", "counter", "Ingest requests shed with ErrOverloaded (HTTP 429).", func(s Stats) int64 { return s.ShedIngests }},
	{"crowdval_validations_total", "counter", "Expert validations submitted.", func(s Stats) int64 { return s.SubmittedValidations }},
	{"crowdval_selections_total", "counter", "Next-object selections served.", func(s Stats) int64 { return s.Selections }},
	{"crowdval_evictions_total", "counter", "Sessions parked to disk under memory pressure.", func(s Stats) int64 { return s.Evictions }},
	{"crowdval_resumes_total", "counter", "Parked sessions resumed on touch.", func(s Stats) int64 { return s.Resumes }},
	{"crowdval_em_iterations_total", "counter", "Full EM iterations run across all sessions.", func(s Stats) int64 { return s.EMIterations }},
	{"crowdval_delta_iterations_total", "counter", "Frontier-restricted delta iterations run across all sessions.", func(s Stats) int64 { return s.DeltaIterations }},
	{"crowdval_wal_records_total", "counter", "Records appended to session write-ahead logs.", func(s Stats) int64 { return s.WALRecords }},
	{"crowdval_wal_bytes_total", "counter", "Bytes written to session write-ahead logs.", func(s Stats) int64 { return s.WALBytes }},
	{"crowdval_wal_fsyncs_total", "counter", "Fsyncs issued by session write-ahead logs.", func(s Stats) int64 { return s.WALSyncs }},
	{"crowdval_checkpoints_total", "counter", "Snapshot checkpoints written (with log truncation).", func(s Stats) int64 { return s.Checkpoints }},
	{"crowdval_checkpoint_failures_total", "counter", "Snapshot checkpoints that failed (log left untruncated).", func(s Stats) int64 { return s.CheckpointFailures }},
	{"crowdval_recovered_sessions", "gauge", "Sessions rebuilt from WAL recovery at boot.", func(s Stats) int64 { return s.RecoveredSessions }},
	{"crowdval_replayed_records", "gauge", "WAL records replayed during boot recovery.", func(s Stats) int64 { return s.ReplayedRecords }},
}

// RenderPrometheus renders a Stats snapshot in the Prometheus text format.
func RenderPrometheus(s Stats) string {
	var b strings.Builder
	for _, m := range promMetrics {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
		fmt.Fprintf(&b, "%s %d\n", m.name, m.value(s))
	}
	return b.String()
}

func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = fmt.Fprint(w, RenderPrometheus(s.manager.Stats()))
}
