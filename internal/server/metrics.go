package server

import (
	"fmt"
	"net/http"
	"strings"
)

// This file renders the manager statistics in the Prometheus text exposition
// format (version 0.0.4), served at GET /metrics alongside the JSON form at
// GET /v1/metrics. The scrape path reads only manager-guarded counters and
// lock-free atomics — it never touches an entry lock, so a scrape cannot
// queue behind an in-flight aggregation or fsync.

// promMetric is one exposed metric: name, type, help, and a getter against a
// Stats snapshot. Ratios (coalescing effectiveness, park/resume churn) are
// left to the scraper: counters stay raw so rate() works.
type promMetric struct {
	name  string
	typ   string // "counter" or "gauge"
	help  string
	value func(Stats) int64
}

var promMetrics = []promMetric{
	{"crowdval_sessions", "gauge", "Managed sessions.", func(s Stats) int64 { return s.Sessions }},
	{"crowdval_sessions_resident", "gauge", "Sessions resident in memory.", func(s Stats) int64 { return s.Resident }},
	{"crowdval_sessions_parked", "gauge", "Sessions parked to disk.", func(s Stats) int64 { return s.Parked }},
	{"crowdval_resident_bytes", "gauge", "Estimated bytes of resident session state.", func(s Stats) int64 { return s.ResidentBytes }},
	{"crowdval_memory_budget_bytes", "gauge", "Configured resident-memory budget (0 = unlimited).", func(s Stats) int64 { return s.MemoryBudget }},
	{"crowdval_ingested_answers_total", "counter", "Crowd answers ingested.", func(s Stats) int64 { return s.IngestedAnswers }},
	{"crowdval_ingest_batches_total", "counter", "AddAnswers batches executed against sessions.", func(s Stats) int64 { return s.IngestBatches }},
	{"crowdval_coalesced_ingests_total", "counter", "Ingest requests merged into another request's batch.", func(s Stats) int64 { return s.CoalescedIngests }},
	{"crowdval_shed_ingests_total", "counter", "Ingest requests shed with ErrOverloaded (HTTP 429).", func(s Stats) int64 { return s.ShedIngests }},
	{"crowdval_validations_total", "counter", "Expert validations submitted.", func(s Stats) int64 { return s.SubmittedValidations }},
	{"crowdval_selections_total", "counter", "Next-object selections served.", func(s Stats) int64 { return s.Selections }},
	{"crowdval_global_selections_total", "counter", "Global cross-session rankings served (GET /v1/next).", func(s Stats) int64 { return s.GlobalSelections }},
	{"crowdval_evictions_total", "counter", "Sessions parked to disk under memory pressure.", func(s Stats) int64 { return s.Evictions }},
	{"crowdval_resumes_total", "counter", "Parked sessions resumed on touch.", func(s Stats) int64 { return s.Resumes }},
	{"crowdval_em_iterations_total", "counter", "Full EM iterations run across all sessions.", func(s Stats) int64 { return s.EMIterations }},
	{"crowdval_delta_iterations_total", "counter", "Frontier-restricted delta iterations run across all sessions.", func(s Stats) int64 { return s.DeltaIterations }},
	{"crowdval_score_index_builds_total", "counter", "Guidance scoring indexes built from scratch.", func(s Stats) int64 { return s.ScoreIndexBuilds }},
	{"crowdval_score_index_patches_total", "counter", "Guidance scoring indexes patched in place (maintained view).", func(s Stats) int64 { return s.ScoreIndexPatches }},
	{"crowdval_wal_records_total", "counter", "Records appended to session write-ahead logs.", func(s Stats) int64 { return s.WALRecords }},
	{"crowdval_wal_bytes_total", "counter", "Bytes written to session write-ahead logs.", func(s Stats) int64 { return s.WALBytes }},
	{"crowdval_wal_fsyncs_total", "counter", "Fsyncs issued by session write-ahead logs.", func(s Stats) int64 { return s.WALSyncs }},
	{"crowdval_checkpoints_total", "counter", "Snapshot checkpoints written (with log truncation).", func(s Stats) int64 { return s.Checkpoints }},
	{"crowdval_checkpoint_failures_total", "counter", "Snapshot checkpoints that failed (log left untruncated).", func(s Stats) int64 { return s.CheckpointFailures }},
	{"crowdval_recovered_sessions", "gauge", "Sessions rebuilt from WAL recovery at boot.", func(s Stats) int64 { return s.RecoveredSessions }},
	{"crowdval_replayed_records", "gauge", "WAL records replayed during boot recovery.", func(s Stats) int64 { return s.ReplayedRecords }},
	{"crowdval_wal_degraded_sessions", "gauge", "Sessions in degraded read-only mode after a durability failure.", func(s Stats) int64 { return s.WALDegradedSessions }},
	{"crowdval_wal_failstop_sessions", "gauge", "Sessions fail-stopped until restart (durable log inconsistent).", func(s Stats) int64 { return s.WALFailStopSessions }},
	{"crowdval_wal_degrade_events_total", "counter", "Transitions of a session into degraded read-only mode.", func(s Stats) int64 { return s.DegradeEvents }},
	{"crowdval_wal_heals_total", "counter", "Degraded sessions healed back to healthy by the probe loop.", func(s Stats) int64 { return s.WALHeals }},
	{"crowdval_wal_probe_failures_total", "counter", "Health probe writes that failed (disk still unavailable).", func(s Stats) int64 { return s.ProbeFailures }},
	{"crowdval_wal_enospc_reclaims_total", "counter", "Successful checkpoint-and-truncate reclaims after ENOSPC.", func(s Stats) int64 { return s.ENOSPCReclaims }},
}

// RenderPrometheus renders a Stats snapshot in the Prometheus text format.
func RenderPrometheus(s Stats) string {
	var b strings.Builder
	for _, m := range promMetrics {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
		fmt.Fprintf(&b, "%s %d\n", m.name, m.value(s))
	}
	// The one float-valued metric: monetary budget is a continuous quantity,
	// not a count, so it is rendered with %g outside the integer table.
	fmt.Fprintf(&b, "# HELP crowdval_budget_remaining Summed monetary budget remaining across budgeted sessions.\n")
	fmt.Fprintf(&b, "# TYPE crowdval_budget_remaining gauge\n")
	fmt.Fprintf(&b, "crowdval_budget_remaining %g\n", s.BudgetRemaining)
	return b.String()
}

// ClusterStats is the cluster fabric's contribution to the metrics endpoints
// (see internal/cluster); all zero on a standalone node. Like Stats it is a
// point-in-time sample of independently monotone (or gauge) counters.
type ClusterStats struct {
	// Self is this node's advertised address; Peers the fabric size.
	Self  string `json:"self,omitempty"`
	Peers int64  `json:"peers"`
	// SessionsOwned counts sessions this node currently owns (serves writes
	// for); FollowedSessions counts sessions it replicates from a leader.
	SessionsOwned    int64 `json:"sessionsOwned"`
	FollowedSessions int64 `json:"followedSessions"`
	// HandoffsIn/HandoffsOut count live session migrations received/sent.
	HandoffsIn  int64 `json:"handoffsIn"`
	HandoffsOut int64 `json:"handoffsOut"`
	// ReplicationLagLSN is the largest (leader LSN − applied LSN) gap across
	// the sessions this node follows, from the latest stream samples.
	ReplicationLagLSN int64 `json:"replicationLagLSN"`
	// Promotions counts followed sessions this node promoted to ownership
	// after a leader failure.
	Promotions int64 `json:"promotions"`
	// NotOwnerRejects counts requests bounced with HTTP 421 because another
	// node owns the session.
	NotOwnerRejects int64 `json:"notOwnerRejects"`
}

// MetricsResponse is the body of GET /v1/metrics: the manager statistics,
// plus the cluster fabric's counters when the node is part of one.
type MetricsResponse struct {
	Stats
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// clusterPromMetrics mirrors ClusterStats in the Prometheus exposition.
var clusterPromMetrics = []struct {
	name  string
	typ   string
	help  string
	value func(ClusterStats) int64
}{
	{"crowdval_cluster_peers", "gauge", "Member nodes in the cluster fabric.", func(c ClusterStats) int64 { return c.Peers }},
	{"crowdval_cluster_sessions_owned", "gauge", "Sessions this node currently owns.", func(c ClusterStats) int64 { return c.SessionsOwned }},
	{"crowdval_cluster_sessions_followed", "gauge", "Sessions this node replicates from a leader.", func(c ClusterStats) int64 { return c.FollowedSessions }},
	{"crowdval_cluster_handoffs_in_total", "counter", "Live session migrations received.", func(c ClusterStats) int64 { return c.HandoffsIn }},
	{"crowdval_cluster_handoffs_out_total", "counter", "Live session migrations sent.", func(c ClusterStats) int64 { return c.HandoffsOut }},
	{"crowdval_cluster_replication_lag_lsns", "gauge", "Largest leader-to-follower LSN gap across followed sessions.", func(c ClusterStats) int64 { return c.ReplicationLagLSN }},
	{"crowdval_cluster_promotions_total", "counter", "Followed sessions promoted to ownership after a leader failure.", func(c ClusterStats) int64 { return c.Promotions }},
	{"crowdval_cluster_not_owner_total", "counter", "Requests rejected with HTTP 421 (session owned elsewhere).", func(c ClusterStats) int64 { return c.NotOwnerRejects }},
}

// RenderPrometheusCluster renders a ClusterStats sample in the Prometheus
// text format.
func RenderPrometheusCluster(c ClusterStats) string {
	var b strings.Builder
	for _, m := range clusterPromMetrics {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
		fmt.Fprintf(&b, "%s %d\n", m.name, m.value(c))
	}
	return b.String()
}

func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = fmt.Fprint(w, RenderPrometheus(s.manager.Stats()))
	if s.clusterStats != nil {
		_, _ = fmt.Fprint(w, RenderPrometheusCluster(s.clusterStats()))
	}
}
