package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"crowdval"
	"crowdval/internal/cverr"
)

// CreateSessionRequest is the body of POST /v1/sessions. Answers are given
// either as a dense objects × workers matrix of labels (-1 = no answer) or as
// a sparse answer list plus explicit dimensions.
type CreateSessionRequest struct {
	Name string `json:"name"`
	// Matrix is the dense form; NumLabels optionally fixes the label
	// alphabet (0 = infer from the largest label present).
	Matrix [][]int `json:"matrix,omitempty"`
	// Sparse form: dimensions plus an answer list.
	Objects   int           `json:"objects,omitempty"`
	Workers   int           `json:"workers,omitempty"`
	NumLabels int           `json:"numLabels,omitempty"`
	Answers   []AnswerJSON  `json:"answers,omitempty"`
	Options   SessionConfig `json:"options"`
}

// AnswerJSON is one crowd answer on the wire.
type AnswerJSON struct {
	Object int `json:"object"`
	Worker int `json:"worker"`
	Label  int `json:"label"`
}

// SessionConfig mirrors the crowdval session options that make sense over
// the wire.
type SessionConfig struct {
	Strategy           string  `json:"strategy,omitempty"`
	Budget             int     `json:"budget,omitempty"`
	CandidateLimit     int     `json:"candidateLimit,omitempty"`
	Seed               int64   `json:"seed,omitempty"`
	Parallelism        int     `json:"parallelism,omitempty"`
	ParallelScoring    bool    `json:"parallelScoring,omitempty"`
	ConfirmationPeriod int     `json:"confirmationPeriod,omitempty"`
	SpammerThreshold   float64 `json:"spammerThreshold,omitempty"`
	SloppyThreshold    float64 `json:"sloppyThreshold,omitempty"`
	UncertaintyGoal    float64 `json:"uncertaintyGoal,omitempty"`
	// Delta enables the delta-incremental ingest path (WithDeltaIngest):
	// re-aggregations refine only the dirty frontier before a full-sweep
	// settle phase, trading bit-for-bit replay equivalence for an
	// order-of-magnitude ingest speedup at a documented tolerance.
	Delta bool `json:"delta,omitempty"`
	// DeltaMaxDirtyFraction overrides the frontier-size fallback threshold
	// (WithDeltaMaxDirtyFraction); 0 keeps the default.
	DeltaMaxDirtyFraction float64 `json:"deltaMaxDirtyFraction,omitempty"`
	// DeltaScoring enables delta-accelerated guidance scoring
	// (WithDeltaScoring): next-object rankings are estimated with
	// frontier-restricted hypothetical EM passes instead of a full warm EM
	// per candidate hypothesis, trading a documented selection tolerance for
	// orders of magnitude in latency.
	DeltaScoring bool `json:"deltaScoring,omitempty"`
	// CostBudget enables the monetary budget tracker (WithCostBudget): the
	// total budget b, charged θ per expert validation; further submissions
	// are refused with ErrBudgetExhausted (HTTP 409) once it is spent. The
	// "budget" option above is the distinct effort *count* limit. Zero
	// leaves the session unbudgeted.
	CostBudget float64 `json:"costBudget,omitempty"`
	// CostTheta overrides the expert-to-crowd cost ratio θ; 0 keeps the
	// default (≈ 12.5).
	CostTheta float64 `json:"costTheta,omitempty"`
	// CostCrowdTime/CostTimePerValidation/CostTimeLimit parameterize the
	// optional completion-time deadline (§6.8): validations beyond what fits
	// in the time limit are infeasible even when money remains. A zero
	// CostTimeLimit disables the deadline.
	CostCrowdTime         float64 `json:"costCrowdTime,omitempty"`
	CostTimePerValidation float64 `json:"costTimePerValidation,omitempty"`
	CostTimeLimit         float64 `json:"costTimeLimit,omitempty"`
}

func (c SessionConfig) options() []crowdval.Option {
	var opts []crowdval.Option
	if c.Strategy != "" {
		opts = append(opts, crowdval.WithStrategy(crowdval.StrategyName(c.Strategy)))
	}
	if c.Budget > 0 {
		opts = append(opts, crowdval.WithBudget(c.Budget))
	}
	if c.CandidateLimit > 0 {
		opts = append(opts, crowdval.WithCandidateLimit(c.CandidateLimit))
	}
	if c.Seed != 0 {
		opts = append(opts, crowdval.WithSeed(c.Seed))
	}
	if c.Parallelism != 0 {
		opts = append(opts, crowdval.WithParallelism(c.Parallelism))
	}
	if c.ParallelScoring {
		opts = append(opts, crowdval.WithParallelScoring())
	}
	if c.ConfirmationPeriod > 0 {
		opts = append(opts, crowdval.WithConfirmationCheck(c.ConfirmationPeriod))
	}
	if c.SpammerThreshold != 0 || c.SloppyThreshold != 0 {
		opts = append(opts, crowdval.WithDetectionThresholds(c.SpammerThreshold, c.SloppyThreshold))
	}
	if c.UncertaintyGoal > 0 {
		opts = append(opts, crowdval.WithUncertaintyGoal(c.UncertaintyGoal))
	}
	if c.Delta {
		opts = append(opts, crowdval.WithDeltaIngest())
	}
	if c.DeltaMaxDirtyFraction > 0 {
		opts = append(opts, crowdval.WithDeltaMaxDirtyFraction(c.DeltaMaxDirtyFraction))
	}
	if c.DeltaScoring {
		opts = append(opts, crowdval.WithDeltaScoring())
	}
	if c.CostBudget > 0 {
		opts = append(opts, crowdval.WithCostBudget(crowdval.CostTracker{
			Theta:  c.CostTheta,
			Budget: c.CostBudget,
			Time: crowdval.CompletionTime{
				CrowdTime:         c.CostCrowdTime,
				TimePerValidation: c.CostTimePerValidation,
			},
			TimeLimit: c.CostTimeLimit,
		}))
	}
	return opts
}

// answerSet builds the AnswerSet described by the request.
func (req *CreateSessionRequest) answerSet() (*crowdval.AnswerSet, error) {
	if len(req.Matrix) > 0 {
		return crowdval.NewAnswerSetFromMatrix(req.Matrix, req.NumLabels)
	}
	answers, err := crowdval.NewAnswerSet(req.Objects, req.Workers, req.NumLabels)
	if err != nil {
		return nil, err
	}
	for _, a := range req.Answers {
		if err := answers.SetAnswer(a.Object, a.Worker, crowdval.Label(a.Label)); err != nil {
			return nil, err
		}
	}
	return answers, nil
}

// SessionSummary is the response of session creation and listing detail.
type SessionSummary struct {
	Name    string `json:"name"`
	Objects int    `json:"objects"`
	Workers int    `json:"workers"`
	Labels  int    `json:"labels"`
	Answers int    `json:"answers"`
}

// IngestRequest is the body of POST /v1/sessions/{name}/answers.
type IngestRequest struct {
	Answers []AnswerJSON `json:"answers"`
}

// IngestResponse reports the outcome of an ingestion.
type IngestResponse struct {
	Ingested    int `json:"ingested"`
	AnswerCount int `json:"answerCount"`
}

// ValidationJSON is one expert validation on the wire.
type ValidationJSON struct {
	Object int `json:"object"`
	Label  int `json:"label"`
}

// SubmitRequest is the body of POST /v1/sessions/{name}/validations. A
// single-element list integrates like Session.SubmitValidation; a longer one
// uses the transactional batch path (Session.SubmitValidations).
type SubmitRequest struct {
	Validations []ValidationJSON `json:"validations"`
}

// StepInfoJSON mirrors crowdval.StepInfo.
type StepInfoJSON struct {
	Object             int     `json:"object"`
	Label              int     `json:"label"`
	ErrorRate          float64 `json:"errorRate"`
	Uncertainty        float64 `json:"uncertainty"`
	FaultyWorkers      int     `json:"faultyWorkers"`
	QuarantinedWorkers []int   `json:"quarantinedWorkers,omitempty"`
	SuspectValidations []int   `json:"suspectValidations,omitempty"`
}

func stepInfoJSON(info crowdval.StepInfo) StepInfoJSON {
	return StepInfoJSON{
		Object:             info.Object,
		Label:              int(info.Label),
		ErrorRate:          info.ErrorRate,
		Uncertainty:        info.Uncertainty,
		FaultyWorkers:      info.FaultyWorkers,
		QuarantinedWorkers: info.QuarantinedWorkers,
		SuspectValidations: info.SuspectValidations,
	}
}

// SubmitResponse echoes one StepInfo per submitted validation, in input
// order.
type SubmitResponse struct {
	Steps []StepInfoJSON `json:"steps"`
}

// ScoredObjectJSON is one ranked candidate of a next-object ranking.
type ScoredObjectJSON struct {
	Object int     `json:"object"`
	Score  float64 `json:"score"`
}

// NextResponse is the body of GET /v1/sessions/{name}/next: the selected
// object plus the full ranking the strategy scored (?k= candidates, ranked
// by score descending; Object always equals Ranking[0].Object).
type NextResponse struct {
	Object  int                `json:"object"`
	Ranking []ScoredObjectJSON `json:"ranking"`
}

// GlobalCandidateJSON is one entry of the global cross-session ranking.
type GlobalCandidateJSON struct {
	Session     string  `json:"session"`
	Object      int     `json:"object"`
	Gain        float64 `json:"gain"`
	GainPerCost float64 `json:"gainPerCost"`
}

// GlobalNextResponse is the body of GET /v1/next: the global top-k next
// validations across all sessions of this node (or, through the router's
// fan-out, the whole fabric), ranked by expected information gain per unit
// cost descending with ties broken by session name then object ascending.
type GlobalNextResponse struct {
	Candidates []GlobalCandidateJSON `json:"candidates"`
}

// BudgetRequest is the body of POST /v1/sessions/{name}/budget: install or
// replace the session's monetary budget. Validations already spent are kept.
type BudgetRequest struct {
	// Budget is the total monetary budget b; it must be positive.
	Budget float64 `json:"budget"`
	// Theta overrides the expert-to-crowd cost ratio θ; 0 keeps the default.
	Theta float64 `json:"theta,omitempty"`
	// CrowdTime/TimePerValidation/TimeLimit parameterize the optional
	// completion-time deadline; a zero TimeLimit disables it.
	CrowdTime         float64 `json:"crowdTime,omitempty"`
	TimePerValidation float64 `json:"timePerValidation,omitempty"`
	TimeLimit         float64 `json:"timeLimit,omitempty"`
}

func (r BudgetRequest) tracker() crowdval.CostTracker {
	return crowdval.CostTracker{
		Theta:  r.Theta,
		Budget: r.Budget,
		Time: crowdval.CompletionTime{
			CrowdTime:         r.CrowdTime,
			TimePerValidation: r.TimePerValidation,
		},
		TimeLimit: r.TimeLimit,
	}
}

// BudgetResponse echoes the session's budget state after a POST .../budget.
type BudgetResponse struct {
	Theta               float64 `json:"theta"`
	Budget              float64 `json:"budget"`
	Spent               int     `json:"spent"`
	Remaining           float64 `json:"remaining"`
	FeasibleValidations int     `json:"feasibleValidations"`
	Exhausted           bool    `json:"exhausted"`
}

// ResultResponse is the body of GET /v1/sessions/{name}/result: the current
// best estimates of the session.
type ResultResponse struct {
	// Labels is the current best label per object (expert validations where
	// present, most probable label elsewhere).
	Labels []int `json:"labels"`
	// Validated lists the objects the expert has validated so far.
	Validated []int `json:"validated,omitempty"`
	// Probabilities is the per-object label distribution, included when the
	// request asked for it with ?probabilities=1.
	Probabilities [][]float64 `json:"probabilities,omitempty"`

	Uncertainty        float64 `json:"uncertainty"`
	EffortSpent        int     `json:"effortSpent"`
	EffortRatio        float64 `json:"effortRatio"`
	Done               bool    `json:"done"`
	QuarantinedWorkers []int   `json:"quarantinedWorkers,omitempty"`
	Objects            int     `json:"objects"`
	Workers            int     `json:"workers"`
	NumLabels          int     `json:"numLabels"`
	AnswerCount        int     `json:"answerCount"`
}

// ErrorResponse is the JSON body of every non-2xx response. Code is the
// stable sentinel name from crowdval.ErrorName (empty for errors outside the
// taxonomy, e.g. malformed JSON). Owner accompanies code "ErrNotOwner" (HTTP
// 421): the address of the node that owns the session, so routers and
// clients retry there instead of guessing.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
	Owner string `json:"owner,omitempty"`
}

// NotOwnerError rejects an operation on a session another node owns. It
// wraps cverr.ErrNotOwner (so errors.Is matching works across the taxonomy)
// and carries the owner's address into the 421 response body.
type NotOwnerError struct {
	Name  string
	Owner string
}

func (e *NotOwnerError) Error() string {
	return fmt.Sprintf("%v: session %q is owned by %s", cverr.ErrNotOwner, e.Name, e.Owner)
}

func (e *NotOwnerError) Unwrap() error { return cverr.ErrNotOwner }

// RetryAfterSeconds is the Retry-After value sent with HTTP 429 responses and
// with 503s carrying ErrDegraded: shed ingests clear as soon as the session's
// queued batch drains, and the health probe loop re-tests a degraded WAL every
// second (DefaultProbeInterval), so in both cases clients should back off
// briefly and retry rather than fail.
const RetryAfterSeconds = 1

// statusFor maps an error to its HTTP status: 404 for unknown sessions, 409
// for state conflicts (duplicate names or validations, exhausted budgets,
// finished sessions), 400 for malformed input, 429 for load shed under
// backpressure, 503 for degraded read-only mode, 504/503 for deadline and
// cancellation, 500 otherwise.
func statusFor(err error) int {
	var badReq *badRequestError
	switch {
	case errors.As(err, &badReq):
		return http.StatusBadRequest
	case errors.Is(err, cverr.ErrSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, cverr.ErrSessionExists),
		errors.Is(err, cverr.ErrAlreadyValidated),
		errors.Is(err, cverr.ErrBudgetExhausted),
		errors.Is(err, cverr.ErrSessionDone):
		return http.StatusConflict
	case errors.Is(err, cverr.ErrOutOfRange),
		errors.Is(err, cverr.ErrInvalidLabel),
		errors.Is(err, cverr.ErrDimensionMismatch),
		errors.Is(err, cverr.ErrRaggedMatrix),
		errors.Is(err, cverr.ErrUnknownStrategy),
		errors.Is(err, cverr.ErrNotValidated),
		errors.Is(err, cverr.ErrNilAnswerSet),
		errors.Is(err, cverr.ErrBadSnapshot),
		errors.Is(err, cverr.ErrSnapshotVersion):
		return http.StatusBadRequest
	case errors.Is(err, cverr.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, cverr.ErrNotOwner):
		return http.StatusMisdirectedRequest
	case errors.Is(err, cverr.ErrDegraded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	body := ErrorResponse{Error: err.Error(), Code: cverr.Name(err)}
	if status == http.StatusTooManyRequests || errors.Is(err, cverr.ErrDegraded) {
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
	}
	var notOwner *NotOwnerError
	if errors.As(err, &notOwner) {
		body.Owner = notOwner.Owner
	}
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// The body was just built from in-memory state; an encoding failure here
	// means the connection broke, which the client observes on its own.
	_ = enc.Encode(body)
}

func decodeJSON(r *http.Request, maxBytes int64, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}
