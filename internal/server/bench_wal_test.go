package server

import (
	"context"
	"math/rand"
	"testing"

	"crowdval"
	"crowdval/internal/wal"
)

// BenchmarkIngestWithWAL prices the durability tax on the manager's ingest
// path: identical workload across a WAL-less manager and the three sync
// policies, calling Manager.AddAnswers directly so the measured delta is log
// framing + write + fsync, not HTTP/JSON. The `wal` benchguard pair tracks
// sync-interval (the serve default) against nowal — the overhead of default
// durability must stay within 25% of its recorded ratio.
//
// The shape is deliberately smaller than the headline workload: WAL cost is
// per-record, not per-object, so a smaller crowd keeps the aggregation share
// of each op low enough that log overhead is visible in the ratio.
func BenchmarkIngestWithWAL(b *testing.B) {
	variants := []struct {
		name   string
		wal    bool
		policy wal.SyncPolicy
	}{
		{name: "nowal"},
		{name: "sync-off", wal: true, policy: wal.SyncPolicy{Mode: wal.SyncOff}},
		{name: "sync-interval", wal: true, policy: wal.SyncPolicy{Mode: wal.SyncInterval, Interval: wal.DefaultSyncInterval}},
		{name: "sync-always", wal: true, policy: wal.SyncPolicy{Mode: wal.SyncAlways}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			benchmarkIngestWAL(b, v.wal, v.policy)
		})
	}
}

func benchmarkIngestWAL(b *testing.B, withWAL bool, policy wal.SyncPolicy) {
	const (
		objects   = 5000
		workers   = 100
		batchSize = 100
	)
	d, err := crowdval.GenerateCrowd(crowdval.CrowdConfig{
		NumObjects: objects, NumWorkers: workers, NumLabels: 2,
		AnswersPerObject: 5,
		NormalAccuracy:   0.7,
		Mix:              crowdval.WorkerMix{Normal: 0.75, RandomSpammer: 0.25},
		Seed:             1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := ManagerConfig{ParkDir: b.TempDir()}
	if withWAL {
		cfg = cfg.WithWAL(b.TempDir(), policy)
	}
	manager, err := NewManager(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const name = "bench-wal"
	if err := manager.Create(context.Background(), name, d.Answers.Clone(),
		crowdval.WithStrategy(crowdval.StrategyBaseline), crowdval.WithSeed(1),
		crowdval.WithDeltaIngest()); err != nil {
		b.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	batches := make([][]crowdval.Answer, 64)
	for i := range batches {
		batch := make([]crowdval.Answer, batchSize)
		for j := range batch {
			batch[j] = crowdval.Answer{
				Object: rng.Intn(objects),
				Worker: rng.Intn(workers),
				Label:  crowdval.Label(rng.Intn(2)),
			}
		}
		batches[i] = batch
	}

	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := manager.AddAnswers(ctx, name, batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stats := manager.Stats()
	if withWAL && stats.WALRecords == 0 {
		b.Fatal("WAL variant logged nothing")
	}
	b.ReportMetric(float64(stats.IngestedAnswers)/b.Elapsed().Seconds(), "answers/sec")
}
