package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"crowdval"
	"crowdval/internal/cverr"
	"crowdval/internal/wal"
)

// This file is the durability glue between the session manager and the
// internal/wal package: per-session log state, the log-before-apply mutation
// discipline, checkpoint rotation with a two-generation fallback, and crash
// recovery.
//
// On-disk layout per session (inside ManagerConfig.WALDir):
//
//	<name>.wal        append-only mutation log (see package wal)
//	<name>.ckpt       newest checkpoint: snapshot + LSN it covers
//	<name>.ckpt.prev  previous checkpoint generation, the fallback when the
//	                  newest one is damaged
//	*.tmp             in-flight atomic writes; debris after a crash, removed
//	                  by recovery
//
// Rotation invariant: the log is only ever truncated down to the LSN of the
// *older* surviving checkpoint, so a corrupt newest checkpoint can always
// fall back to <name>.ckpt.prev plus a longer replay — no single torn write
// can lose acknowledged state.

// sessionWAL is one session's write-ahead log state. It is guarded by the
// owning entry's mu, like the session itself: every append runs inside the
// session's write critical section, which keeps log order identical to apply
// order.
type sessionWAL struct {
	f   *os.File
	app *wal.Appender
	// state is the log's health (healthy → degraded → fail-stop, see
	// health.go); cause records the first failure that left healthy. A log
	// whose write failed partway is in an unknown byte state, so the session
	// degrades to read-only until the probe loop heals it — or fails stop
	// when the durable history itself is inconsistent.
	state walHealth
	cause error
	// sinceCkpt counts records logged since the last checkpoint; lastCkptLSN
	// is the LSN the newest checkpoint covers (the truncation floor for the
	// *next* rotation is this value, i.e. the generation being demoted).
	sinceCkpt   int
	lastCkptLSN uint64
	// seen* are the appender metrics already folded into the manager's
	// atomic counters.
	seenBytes, seenRecords, seenSyncs int64
}

func (w *sessionWAL) close() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
}

func (m *Manager) walPath(name string) string {
	return filepath.Join(m.walDir, name+".wal")
}

func (m *Manager) ckptPath(name string) string {
	return filepath.Join(m.walDir, name+".ckpt")
}

func (m *Manager) ckptPrevPath(name string) string {
	return filepath.Join(m.walDir, name+".ckpt.prev")
}

// wrapWAL applies the fault-injection seams to a freshly opened log file: the
// crash-test byte-budget hook when installed, else the configured injector
// (keyed on the log's path, so rules match on session name or ".wal"); in
// production both are nil and it is the identity.
func (m *Manager) wrapWAL(name string, f *os.File) wal.File {
	if m.walOpen != nil {
		return m.walOpen(name, f)
	}
	return m.injector.WrapFile(m.walPath(name), f)
}

// foldWALMetrics folds the appender's cumulative metrics into the manager's
// atomic counters as deltas against the last fold.
func (m *Manager) foldWALMetrics(w *sessionWAL) {
	b, r, s := w.app.Metrics()
	m.walBytes.Add(b - w.seenBytes)
	m.walRecords.Add(r - w.seenRecords)
	m.walSyncs.Add(s - w.seenSyncs)
	w.seenBytes, w.seenRecords, w.seenSyncs = b, r, s
}

// createWAL starts the log of a freshly created session: a new file whose
// first record carries the session's snapshot, synced regardless of policy —
// session creation is durable before it is acknowledged, whatever the
// per-mutation trade-off. A failure fails the creation.
func (m *Manager) createWAL(name string, sess *crowdval.Session) (*sessionWAL, error) {
	snap, err := sess.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("server: snapshotting session %q for its WAL: %w", name, err)
	}
	path := m.walPath(name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: creating WAL for session %q: %w", name, err)
	}
	w := &sessionWAL{f: f}
	fail := func(err error) (*sessionWAL, error) {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("server: creating WAL for session %q: %w", name, err)
	}
	app, err := wal.NewAppender(m.wrapWAL(name, f), 0, m.walSync)
	if err != nil {
		return fail(err)
	}
	w.app = app
	if _, err := app.Append(wal.Record{Type: wal.RecCreate, Snapshot: snap}); err != nil {
		return fail(err)
	}
	if err := app.Sync(); err != nil {
		return fail(err)
	}
	m.foldWALMetrics(w)
	// A stale checkpoint pair from a deleted predecessor of the same name
	// must not shadow the fresh log.
	os.Remove(m.ckptPath(name))
	os.Remove(m.ckptPrevPath(name))
	return w, nil
}

// removeWALFiles deletes every durability file of a session (Delete path).
func (m *Manager) removeWALFiles(name string) {
	if m.walDir == "" {
		return
	}
	os.Remove(m.walPath(name))
	os.Remove(m.ckptPath(name))
	os.Remove(m.ckptPrevPath(name))
	os.Remove(m.walPath(name) + ".tmp")
	os.Remove(m.ckptPath(name) + ".tmp")
}

// logMutation appends one mutation record to the entry's log, before the
// mutation is applied. A nil log (WAL disabled) is a no-op. On failure the
// caller must not apply the mutation, and the log degrades to read-only —
// with one exception: a full disk (ENOSPC) first tries a checkpoint-and-
// truncate to reclaim log space and retries the append once, so a disk
// filled by the log itself heals without ever degrading. The caller holds
// the entry's write lock.
func (m *Manager) logMutation(e *entry, rec wal.Record) error {
	w := e.log
	if w == nil {
		return nil
	}
	if w.state != walHealthy {
		return w.unavailable(e.name)
	}
	_, err := w.app.Append(rec)
	m.foldWALMetrics(w)
	if err != nil && errors.Is(err, syscall.ENOSPC) && e.sess != nil {
		// The checkpoint-and-truncate drops every record the new checkpoint
		// covers (and the failed append's torn bytes with them), which is
		// the biggest space reclaim this session can make. The probe loop
		// handles the case where even that does not fit.
		if herr := m.healSession(e.name, e.sess, w); herr == nil {
			m.enospcReclaims.Add(1)
			_, err = w.app.Append(rec)
			m.foldWALMetrics(w)
		}
	}
	if err != nil {
		m.degradeWAL(w, err)
		return fmt.Errorf("server: logging mutation for session %q: %w: %w", e.name, err, cverr.ErrDegraded)
	}
	w.sinceCkpt++
	if m.walFlushEach {
		// Make the record visible to tailing followers right away. A failed
		// flush leaves the file in an unknown byte state, the same situation
		// as a failed append: degrade.
		if err := w.app.Flush(); err != nil {
			m.degradeWAL(w, err)
			return fmt.Errorf("server: flushing WAL of session %q: %w: %w", e.name, err, cverr.ErrDegraded)
		}
	}
	return nil
}

// maybeCheckpoint writes a snapshot checkpoint and truncates the log when the
// configured record interval has elapsed. Failures are counted, not retried
// per-mutation (the next full interval tries again), and never truncate. The
// caller holds the entry's write lock with a resident session.
func (m *Manager) maybeCheckpoint(e *entry) {
	w := e.log
	if w == nil || w.state != walHealthy || m.ckptEvery <= 0 || w.sinceCkpt < m.ckptEvery || e.sess == nil {
		return
	}
	if err := m.checkpoint(e.name, e.sess, w); err != nil {
		m.checkpointFails.Add(1)
		w.sinceCkpt = 0
		return
	}
	m.checkpoints.Add(1)
}

// checkpoint writes the session's snapshot as the new newest checkpoint,
// demotes the previous newest to the fallback generation, and truncates the
// log down to the demoted generation's LSN. The caller holds the session's
// write lock.
func (m *Manager) checkpoint(name string, sess *crowdval.Session, w *sessionWAL) error {
	snap, err := sess.Snapshot()
	if err != nil {
		return err
	}
	// Every logged record must be durable before any truncation decision:
	// the checkpoint claims to cover them.
	if err := w.app.Sync(); err != nil {
		m.degradeWAL(w, err)
		return err
	}
	m.foldWALMetrics(w)
	lsn := w.app.LSN()

	ckpt := m.ckptPath(name)
	tmp := ckpt + ".tmp"
	if err := m.writeFileSynced(tmp, func(f io.Writer) error {
		return wal.WriteCheckpoint(f, lsn, snap)
	}); err != nil {
		os.Remove(tmp)
		return err
	}
	floor := w.lastCkptLSN
	if err := m.injector.Rename(ckpt, m.ckptPrevPath(name)); err != nil && !errors.Is(err, os.ErrNotExist) {
		os.Remove(tmp)
		return err
	}
	if err := m.injector.Rename(tmp, ckpt); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := m.rewriteLog(name, w, floor, lsn); err != nil {
		return err
	}
	w.lastCkptLSN = lsn
	w.sinceCkpt = 0
	return nil
}

// rewriteLog replaces the session's log with a canonical re-encode of its
// records in (floor, lastLSN], rebased to baseLSN=floor, and swaps the live
// appender onto the new file at lastLSN. Any torn tail bytes beyond lastLSN
// (from a failed append or a crash) vanish in the rewrite; a record at or
// below lastLSN that cannot be read back fails the session stop instead —
// see failStop below. On failure after the swap point the log degrades.
func (m *Manager) rewriteLog(name string, w *sessionWAL, floor, lastLSN uint64) error {
	path := m.walPath(name)
	tmp := path + ".tmp"
	nf, err := m.injector.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// The rewrite is plumbing, not new mutations: no crash-test byte budget
	// (the injector seam still applies — a disk that fails mid-rotation must
	// be injectable), no per-record fsync, one sync before the atomic swap.
	app, err := wal.NewAppender(m.injector.WrapFile(tmp, nf), floor, wal.SyncPolicy{Mode: wal.SyncOff})
	if err != nil {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	fail := func(err error) error {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	// Every record through lastLSN was fsynced before this rotation started,
	// so the rewrite must be able to read all of them back. Failing to —
	// unopenable file, bad header, a corrupt or missing record at or below
	// lastLSN — is corruption of the live log, not a torn tail: installing a
	// shortened log here would leave an implicit-LSN gap that a later
	// fallback recovery silently skips over. The session fails stop instead.
	// Only bytes strictly beyond lastLSN are a droppable torn tail.
	failStop := func(err error) error {
		err = fmt.Errorf("server: rotating WAL of session %q: %w", name, err)
		m.failStopWAL(w, err)
		return fail(err)
	}
	if lastLSN > floor {
		old, err := os.Open(path)
		if err != nil {
			return failStop(err)
		}
		rd, err := wal.NewReader(old)
		if err != nil {
			old.Close()
			return failStop(err)
		}
		for lsn := rd.BaseLSN(); lsn < lastLSN; {
			rec, recLSN, nerr := rd.Next()
			if nerr != nil {
				old.Close()
				if nerr == io.EOF {
					nerr = fmt.Errorf("%w: log ends at LSN %d, %d durable records missing", cverr.ErrBadWAL, lsn, lastLSN-lsn)
				}
				return failStop(nerr)
			}
			lsn = recLSN
			if recLSN <= floor {
				continue
			}
			if _, aerr := app.Append(rec); aerr != nil {
				old.Close()
				return fail(aerr)
			}
		}
		old.Close()
	}
	if err := app.Sync(); err != nil {
		return fail(err)
	}
	if err := nf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := m.injector.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Swap the live appender onto the rewritten file.
	w.close()
	f, err := m.injector.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The rewritten file on disk is complete and consistent; only this
		// process lost its handle. Degrade — the probe loop's next heal
		// rebuilds the handle along with everything else.
		m.degradeWAL(w, err)
		return err
	}
	w.f = f
	w.app = wal.ResumeAppender(m.wrapWAL(name, f), lastLSN, m.walSync)
	w.seenBytes, w.seenRecords, w.seenSyncs = 0, 0, 0
	return nil
}

// writeFileSynced writes a file through fn, fsyncs and closes it — the
// prefix of every atomic tmp-then-rename sequence in this file. Open, write
// and fsync all pass through the fault-injection seam, so checkpoint faults
// are injectable at every step of a rotation.
func (m *Manager) writeFileSynced(path string, fn func(io.Writer) error) error {
	f, err := m.injector.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	s := m.injector.WrapFile(path, f)
	if err := fn(s); err != nil {
		f.Close()
		return err
	}
	if err := s.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readCheckpointFile loads and verifies one checkpoint generation.
func readCheckpointFile(path string) (lsn uint64, snapshot []byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	return wal.ReadCheckpoint(f)
}

// answersRecord frames an ingest batch as a log record.
func answersRecord(answers []crowdval.Answer) wal.Record {
	rec := wal.Record{Type: wal.RecAddAnswers, Answers: make([]wal.Answer, len(answers))}
	for i, a := range answers {
		rec.Answers[i] = wal.Answer{Object: a.Object, Worker: a.Worker, Label: int(a.Label)}
	}
	return rec
}

// submitRecord frames one expert validation as a log record.
func submitRecord(object int, label crowdval.Label) wal.Record {
	return wal.Record{Type: wal.RecSubmit, Validations: []wal.Validation{{Object: object, Label: int(label)}}}
}

// submitBatchRecord frames a transactional validation batch as a log record.
func submitBatchRecord(inputs []crowdval.ValidationInput) wal.Record {
	rec := wal.Record{Type: wal.RecSubmitBatch, Validations: make([]wal.Validation, len(inputs))}
	for i, in := range inputs {
		rec.Validations[i] = wal.Validation{Object: in.Object, Label: int(in.Label)}
	}
	return rec
}

// budgetRecord frames a monetary budget (re)configuration as a log record.
// Only the parameters are logged — the spent count is reconstructed during
// recovery by replaying the acknowledged submit records, which re-charge the
// tracker through the same Submit paths the live requests took.
func budgetRecord(t crowdval.CostTracker) wal.Record {
	return wal.Record{Type: wal.RecBudget, Budget: &wal.Budget{
		Theta:             t.Theta,
		Total:             t.Budget,
		CrowdTime:         t.Time.CrowdTime,
		TimePerValidation: t.Time.TimePerValidation,
		TimeLimit:         t.TimeLimit,
	}}
}

// RecoveredSession reports the outcome of recovering one session's log.
type RecoveredSession struct {
	// Name is the session name (the log file's base name).
	Name string `json:"name"`
	// CheckpointLSN is the LSN covered by the checkpoint that was resumed;
	// zero when the session was rebuilt from its create record alone.
	CheckpointLSN uint64 `json:"checkpointLSN"`
	// LastLSN is the LSN of the last intact record applied.
	LastLSN uint64 `json:"lastLSN"`
	// Replayed is the number of tail records replayed through the session API.
	Replayed int `json:"replayed"`
	// UsedFallback reports that the newest checkpoint was unreadable and the
	// previous generation was resumed instead (with a longer replay).
	UsedFallback bool `json:"usedFallback,omitempty"`
	// TornTail reports that the log ended in a torn or corrupt record, which
	// recovery dropped — the signature of a crash mid-append.
	TornTail bool `json:"tornTail,omitempty"`
	// Err is non-nil when the session could not be recovered at all; the
	// manager does not serve it. Other sessions recover independently.
	Err error `json:"-"`
}

// Recover scans the WAL directory and rebuilds every logged session: resume
// the newest intact checkpoint (falling back one generation when it is
// damaged), replay the log tail through the session API, and install the
// session in the manager. It must run before the manager serves traffic.
// Each recovered session ends with a fresh checkpoint + log rotation, so a
// torn tail never survives into the resumed log. Per-session failures are
// reported in the returned slice, not as the overall error — one damaged
// session must not block the rest.
func (m *Manager) Recover(ctx context.Context) ([]RecoveredSession, error) {
	if m.walDir == "" {
		return nil, nil
	}
	des, err := os.ReadDir(m.walDir)
	if err != nil {
		return nil, fmt.Errorf("server: scanning WAL directory: %w", err)
	}
	var names []string
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		if name, ok := strings.CutSuffix(de.Name(), ".wal"); ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []RecoveredSession
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		r := m.recoverSession(ctx, name)
		if r.Err == nil {
			m.recovered.Add(1)
			m.replayed.Add(int64(r.Replayed))
		}
		out = append(out, r)
	}
	return out, nil
}

// recoverSession rebuilds one session from its checkpoint and log.
func (m *Manager) recoverSession(ctx context.Context, name string) (r RecoveredSession) {
	r.Name = name
	// Debris of an interrupted checkpoint or rotation.
	os.Remove(m.ckptPath(name) + ".tmp")
	os.Remove(m.walPath(name) + ".tmp")

	// Newest intact checkpoint, falling back one generation. A missing
	// newest with a present fallback is also a crash signature (killed
	// between the two renames of a rotation), so any failure to read the
	// newest tries the fallback.
	var snap []byte
	var ckptLSN uint64
	haveCkpt := false
	if lsn, s, err := readCheckpointFile(m.ckptPath(name)); err == nil {
		snap, ckptLSN, haveCkpt = s, lsn, true
	} else if lsn, s, err := readCheckpointFile(m.ckptPrevPath(name)); err == nil {
		snap, ckptLSN, haveCkpt = s, lsn, true
		r.UsedFallback = true
	}

	f, err := os.Open(m.walPath(name))
	if err != nil {
		r.Err = fmt.Errorf("server: opening WAL of session %q: %w", name, err)
		return r
	}
	rd, rdErr := wal.NewReader(f)
	if rdErr != nil && !haveCkpt {
		f.Close()
		r.Err = fmt.Errorf("server: session %q: log header unreadable and no intact checkpoint: %w", name, rdErr)
		return r
	}

	var sess *crowdval.Session
	if haveCkpt {
		sess, err = crowdval.ResumeSession(snap)
		if err != nil {
			f.Close()
			r.Err = fmt.Errorf("server: resuming checkpoint of session %q: %w", name, err)
			return r
		}
		r.CheckpointLSN = ckptLSN
	}
	lastLSN := ckptLSN
	if rdErr != nil {
		// Unreadable log with a good checkpoint: recover the checkpoint state
		// with an empty tail; the closing rotation rebuilds a clean log.
		r.TornTail = true
	} else {
		for {
			rec, lsn, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				r.TornTail = true
				break
			}
			if haveCkpt && lsn <= ckptLSN {
				continue // already folded into the checkpoint snapshot
			}
			if sess == nil {
				if rec.Type != wal.RecCreate {
					r.Err = fmt.Errorf("server: session %q: log starts with record type %d instead of a create record and no checkpoint is intact: %w", name, rec.Type, cverr.ErrBadWAL)
					f.Close()
					return r
				}
				sess, err = crowdval.ResumeSession(rec.Snapshot)
				if err != nil {
					f.Close()
					r.Err = fmt.Errorf("server: resuming create record of session %q: %w", name, err)
					return r
				}
				lastLSN = lsn
				r.Replayed++
				continue
			}
			if rec.Type == wal.RecCreate {
				// A create record beyond the resumed state means the tail is
				// inconsistent; stop as if torn.
				r.TornTail = true
				break
			}
			if aerr := replayRecord(ctx, sess, rec); aerr != nil {
				// Per-record application errors re-fail exactly as they did
				// live (the library rejects without mutating), so replay
				// ignores them; only cancellation aborts recovery.
				if errors.Is(aerr, context.Canceled) || errors.Is(aerr, context.DeadlineExceeded) {
					f.Close()
					r.Err = aerr
					return r
				}
			}
			lastLSN = lsn
			r.Replayed++
		}
	}
	f.Close()
	if sess == nil {
		r.Err = fmt.Errorf("server: session %q has neither an intact checkpoint nor a create record: %w", name, cverr.ErrBadWAL)
		return r
	}
	r.LastLSN = lastLSN

	// Reattach an appender at the clean LSN. The file may still carry torn
	// tail bytes; the unconditional rotation below rewrites it canonically
	// before any new record is appended.
	af, err := os.OpenFile(m.walPath(name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		r.Err = fmt.Errorf("server: reopening WAL of session %q: %w", name, err)
		return r
	}
	w := &sessionWAL{
		f:           af,
		app:         wal.ResumeAppender(m.wrapWAL(name, af), lastLSN, m.walSync),
		lastCkptLSN: ckptLSN,
	}
	if r.UsedFallback {
		// The newest checkpoint is corrupt; deleting it keeps the rotation
		// below from demoting garbage over the good fallback generation.
		os.Remove(m.ckptPath(name))
	}
	if err := m.checkpoint(name, sess, w); err != nil {
		m.checkpointFails.Add(1)
		if r.TornTail {
			// Without the rewrite the torn bytes are still in the file and
			// appending after them would corrupt the log: degrade, and let
			// the probe loop retry the rewrite.
			m.degradeWAL(w, err)
		}
	} else {
		m.checkpoints.Add(1)
	}

	if err := m.installRecovered(name, sess, w); err != nil {
		w.close()
		r.Err = err
	}
	return r
}

// replayRecord applies one logged mutation to a session being recovered.
func replayRecord(ctx context.Context, sess *crowdval.Session, rec wal.Record) error {
	switch rec.Type {
	case wal.RecAddAnswers:
		answers := make([]crowdval.Answer, len(rec.Answers))
		for i, a := range rec.Answers {
			answers[i] = crowdval.Answer{Object: a.Object, Worker: a.Worker, Label: crowdval.Label(a.Label)}
		}
		return sess.AddAnswers(ctx, answers)
	case wal.RecSubmit:
		_, err := sess.SubmitValidationContext(ctx, rec.Validations[0].Object, crowdval.Label(rec.Validations[0].Label))
		return err
	case wal.RecSubmitBatch:
		inputs := make([]crowdval.ValidationInput, len(rec.Validations))
		for i, v := range rec.Validations {
			inputs[i] = crowdval.ValidationInput{Object: v.Object, Label: crowdval.Label(v.Label)}
		}
		_, err := sess.SubmitValidations(ctx, inputs)
		return err
	case wal.RecBudget:
		b := rec.Budget
		sess.SetCostBudget(crowdval.CostTracker{
			Theta:  b.Theta,
			Budget: b.Total,
			Time: crowdval.CompletionTime{
				CrowdTime:         b.CrowdTime,
				TimePerValidation: b.TimePerValidation,
			},
			TimeLimit: b.TimeLimit,
		})
		return nil
	case wal.RecNoop:
		return nil
	default:
		return fmt.Errorf("server: replaying unknown record type %d: %w", rec.Type, cverr.ErrBadWAL)
	}
}

// errManagerClosed marks session logs retired by Manager.Close: further
// mutations are rejected through the fail-stop path instead of silently
// applying unlogged.
var errManagerClosed = errors.New("server: manager closed")

// Close flushes and fsyncs every open session write-ahead log and releases
// the log file handles — the graceful-shutdown counterpart of crash
// recovery. Under the interval and off sync policies acknowledged records
// may still sit in an appender's buffer; without this flush a perfectly
// clean restart could lose more than the documented crash-risk window. Call
// it after the HTTP server has stopped accepting requests; Close is
// idempotent, mutations attempted afterwards are rejected through the
// fail-stop path, and a manager without a WAL has nothing to do.
func (m *Manager) Close() error {
	if m.walDir == "" {
		return nil
	}
	m.mu.Lock()
	entries := make([]*entry, 0, len(m.sessions))
	for _, e := range m.sessions {
		entries = append(entries, e)
	}
	m.mu.Unlock()
	var firstErr error
	for _, e := range entries {
		e.mu.Lock()
		if w := e.log; w != nil {
			if w.state == walHealthy {
				if err := w.app.Sync(); err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("server: syncing WAL of session %q at shutdown: %w", e.name, err)
					}
				} else {
					m.foldWALMetrics(w)
				}
			}
			m.failStopWAL(w, errManagerClosed)
			w.close()
		}
		e.mu.Unlock()
	}
	return firstErr
}

// installRecovered publishes a recovered session in the manager, mirroring
// install but with the session and its log already built.
func (m *Manager) installRecovered(name string, sess *crowdval.Session, w *sessionWAL) error {
	if err := ValidateSessionName(name); err != nil {
		return err
	}
	e := &entry{name: name, sess: sess, log: w}
	e.mu.Lock()
	m.mu.Lock()
	if _, exists := m.sessions[name]; exists {
		m.mu.Unlock()
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", cverr.ErrSessionExists, name)
	}
	m.sessions[name] = e
	e.elem = m.lru.PushFront(e)
	m.mu.Unlock()
	victims := m.settle(e)
	e.mu.Unlock()
	m.parkAll(victims)
	return nil
}
