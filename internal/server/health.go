package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"crowdval"
	"crowdval/internal/cverr"
	"crowdval/internal/wal"
)

// This file is the session health state machine and its self-healing probe
// loop. Every session with a WAL is in one of three states:
//
//	healthy   — mutations append and apply normally.
//	degraded  — a durability failure (append, fsync, flush, or the closing
//	            checkpoint of a torn-tail recovery) left the log in an
//	            unknown byte state. Mutations are rejected with ErrDegraded
//	            (HTTP 503 + Retry-After); every read keeps serving from the
//	            in-memory session, which still equals exactly the acked ops
//	            because logMutation rejects before the mutation applies.
//	            The probe loop re-tests the disk and heals the session back
//	            to healthy without a restart.
//	fail-stop — the durable log itself is inconsistent (a record below the
//	            fsynced LSN cannot be read back) or the manager was closed.
//	            Terminal until a restart re-runs recovery; healing from
//	            memory is not sound here because the on-disk history already
//	            contradicts it.
//
// The one-way door between the two failure tiers: degraded means "the disk
// stopped cooperating but memory is authoritative", fail-stop means "the
// disk's own story is broken". Healing is a fresh checkpoint written from
// memory plus an empty log based at the same LSN — exactly the state a
// session is in right after a normal rotation.

// walHealth is the durability state of one session's WAL.
type walHealth int

const (
	walHealthy walHealth = iota
	walDegraded
	walFailStop
)

// DefaultProbeInterval is the probe cadence of HealthLoop when the caller
// passes zero.
const DefaultProbeInterval = time.Second

// unavailable builds the rejection error for a mutation against a non-healthy
// log. Degraded rejections carry cverr.ErrDegraded so the HTTP layer maps
// them to 503 + Retry-After; fail-stop rejections stay plain 500s — retrying
// against this process cannot succeed.
func (w *sessionWAL) unavailable(name string) error {
	if w.state == walFailStop {
		return fmt.Errorf("server: WAL of session %q failed earlier, mutations rejected until restart: %w", name, w.cause)
	}
	return fmt.Errorf("server: session %q is read-only while its WAL heals: %v: %w", name, w.cause, cverr.ErrDegraded)
}

// degradeWAL moves a healthy log to degraded read-only mode, keeping the
// first cause. Degrading an already degraded or fail-stopped log is a no-op.
// The caller holds the entry's write lock.
func (m *Manager) degradeWAL(w *sessionWAL, err error) {
	if w.state != walHealthy {
		return
	}
	w.state = walDegraded
	w.cause = err
	m.walDegraded.Add(1)
	m.degradeEvents.Add(1)
}

// failStopWAL moves a log to the terminal fail-stop state from any state.
// The caller holds the entry's write lock.
func (m *Manager) failStopWAL(w *sessionWAL, err error) {
	if w.state == walFailStop {
		return
	}
	if w.state == walDegraded {
		m.walDegraded.Add(-1)
	}
	w.state = walFailStop
	w.cause = err
	m.walFailStop.Add(1)
}

// healWAL moves a degraded log back to healthy after a successful heal. The
// caller holds the entry's write lock.
func (m *Manager) healWAL(w *sessionWAL) {
	if w.state != walDegraded {
		return
	}
	w.state = walHealthy
	w.cause = nil
	m.walDegraded.Add(-1)
	m.walHeals.Add(1)
}

// healSession rebuilds a session's durability state from its in-memory
// state: a fresh checkpoint pair covering the current LSN plus an empty log
// based there. This is sound because logMutation rejects a mutation before
// it applies, so the in-memory session always equals exactly the acked
// (logged and applied) ops even after append failures; and it is crash-safe
// because the new checkpoint alone reproduces that state. It is also the
// ENOSPC reclaim: the rewrite drops every record the checkpoint covers, so
// a full disk gets the whole log's space back minus one header.
//
// Unlike checkpoint, healSession never syncs the old appender — the old log
// is in an unknown byte state and is about to be replaced wholesale. The
// caller holds the entry's write lock with a resident session.
func (m *Manager) healSession(name string, sess *crowdval.Session, w *sessionWAL) error {
	snap, err := sess.Snapshot()
	if err != nil {
		return err
	}
	// LSN() may count a phantom record whose append was buffered but whose
	// sync failed; that only skips a number — the new checkpoint's LSN and
	// the new log's base agree, which is all replay numbering needs.
	lsn := w.app.LSN()
	ckpt := m.ckptPath(name)
	tmp := ckpt + ".tmp"
	if err := m.writeFileSynced(tmp, func(f io.Writer) error {
		return wal.WriteCheckpoint(f, lsn, snap)
	}); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := m.injector.Rename(ckpt, m.ckptPrevPath(name)); err != nil && !errors.Is(err, os.ErrNotExist) {
		os.Remove(tmp)
		return err
	}
	if err := m.injector.Rename(tmp, ckpt); err != nil {
		os.Remove(tmp)
		return err
	}
	// floor == lastLSN makes the rewrite skip the read-back entirely: the
	// new log is just a header based at lsn, and the live appender swaps
	// onto it.
	if err := m.rewriteLog(name, w, lsn, lsn); err != nil {
		return err
	}
	w.lastCkptLSN = lsn
	w.sinceCkpt = 0
	return nil
}

// probeWAL append+fsyncs a no-op record to a sidecar probe file in the WAL
// directory — the cheapest end-to-end test of "does this disk accept durable
// writes again". The probe file goes through the same fault-injection seam
// as the session logs, so an armed injector keeps probes failing until it is
// cleared. The file is removed afterwards; recovery also ignores it (no
// .wal suffix).
func (m *Manager) probeWAL() error {
	path := filepath.Join(m.walDir, ".probe")
	f, err := m.injector.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("server: opening WAL probe file: %w", err)
	}
	defer func() {
		f.Close()
		os.Remove(path)
	}()
	app, err := wal.NewAppender(m.injector.WrapFile(path, f), 0, wal.SyncPolicy{Mode: wal.SyncAlways})
	if err != nil {
		return fmt.Errorf("server: probing WAL directory: %w", err)
	}
	if _, err := app.Append(wal.Record{Type: wal.RecNoop}); err != nil {
		return fmt.Errorf("server: probing WAL directory: %w", err)
	}
	return nil
}

// ProbeOnce runs one probe-and-heal pass: if any session is degraded, it
// tests the WAL directory with a durable no-op write and, on success, heals
// every degraded session back to healthy. It returns how many sessions
// healed. With no degraded session it returns immediately — the loop costs
// two atomic loads per tick on a healthy node.
func (m *Manager) ProbeOnce(ctx context.Context) (int, error) {
	if m.walDir == "" || m.walDegraded.Load() == 0 {
		return 0, nil
	}
	if err := m.probeWAL(); err != nil {
		m.probeFailures.Add(1)
		return 0, err
	}
	m.mu.Lock()
	entries := make([]*entry, 0, len(m.sessions))
	for _, e := range m.sessions {
		entries = append(entries, e)
	}
	m.mu.Unlock()
	healed := 0
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return healed, err
		}
		e.mu.Lock()
		w := e.log
		if w == nil || w.state != walDegraded || e.deleted {
			e.mu.Unlock()
			continue
		}
		if e.sess == nil {
			// A degraded session can be parked like any other; healing needs
			// its state resident.
			if err := m.unpark(e); err != nil {
				e.mu.Unlock()
				continue
			}
		}
		if err := m.healSession(e.name, e.sess, w); err == nil {
			m.healWAL(w)
			healed++
		}
		victims := m.settle(e)
		e.mu.Unlock()
		m.parkAll(victims)
	}
	return healed, nil
}

// HealthLoop runs ProbeOnce every interval (DefaultProbeInterval when zero
// or negative) until the context is canceled — the background self-healing
// companion of a serving manager. Run it in its own goroutine.
func (m *Manager) HealthLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_, _ = m.ProbeOnce(ctx)
		}
	}
}

// HealthStatus summarizes the durability health of the managed sessions for
// readiness endpoints.
type HealthStatus struct {
	// State is "healthy", "degraded" (≥1 session read-only, reads serve,
	// probe loop is working on it) or "failstop" (≥1 session needs a
	// restart to serve mutations again).
	State string `json:"state"`
	// DegradedSessions / FailStopSessions are the current gauge values.
	DegradedSessions int64 `json:"degradedSessions"`
	FailStopSessions int64 `json:"failStopSessions"`
}

// Health samples the health gauges. Lock-free: readiness probes never queue
// behind an in-flight fsync.
func (m *Manager) Health() HealthStatus {
	h := HealthStatus{
		State:            "healthy",
		DegradedSessions: m.walDegraded.Load(),
		FailStopSessions: m.walFailStop.Load(),
	}
	switch {
	case h.FailStopSessions > 0:
		h.State = "failstop"
	case h.DegradedSessions > 0:
		h.State = "degraded"
	}
	return h
}
