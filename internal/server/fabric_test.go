package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"crowdval"
	"crowdval/internal/cverr"
	"crowdval/internal/wal"
)

func TestHandoffSessionMovesState(t *testing.T) {
	d := testCrowd(t, 16, 5, 11)
	extra := testCrowd(t, 16, 3, 13)
	ctx := context.Background()
	aWAL, bWAL := t.TempDir(), t.TempDir()
	const name = "moving"

	a, err := NewManager(walManagerConfig(t, aWAL, 3)) // checkpoints on: handoff after a rotation
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Create(ctx, name, d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}
	ops := walScript(d, extra)
	runScript(t, a, name, ops[:5], true)
	want := managerSnapshot(t, a, name)
	lsnA, err := a.SessionLSN(name)
	if err != nil {
		t.Fatal(err)
	}

	var gotSnap []byte
	var gotLSN uint64
	if err := a.HandoffSession(ctx, name, func(snap []byte, lsn uint64) error {
		gotSnap, gotLSN = snap, lsn
		return nil
	}); err != nil {
		t.Fatalf("HandoffSession: %v", err)
	}
	if !bytes.Equal(gotSnap, want) {
		t.Fatal("handoff snapshot differs from the session's own snapshot")
	}
	if gotLSN != lsnA {
		t.Fatalf("handoff LSN = %d, want %d", gotLSN, lsnA)
	}
	// The donor retired its copy: the name is free, the durability files gone.
	if _, err := a.Snapshot(ctx, name); !errors.Is(err, cverr.ErrSessionNotFound) {
		t.Fatalf("donor still serves the session: %v", err)
	}
	for _, leftover := range []string{name + ".wal", name + ".ckpt", name + ".ckpt.prev"} {
		if _, err := os.Stat(filepath.Join(aWAL, leftover)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("donor kept %s after handoff", leftover)
		}
	}

	b, err := NewManager(walManagerConfig(t, bWAL, -1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CreateFromHandoff(ctx, name, gotSnap, gotLSN); err != nil {
		t.Fatalf("CreateFromHandoff: %v", err)
	}
	if got := managerSnapshot(t, b, name); !bytes.Equal(got, want) {
		t.Fatal("adopted session state differs from the donor's")
	}
	// LSN numbering continues across the handoff.
	if lsnB, _ := b.SessionLSN(name); lsnB != gotLSN {
		t.Fatalf("adopted LSN = %d, want %d", lsnB, gotLSN)
	}

	// The adopted session keeps full durability: run the rest of the script,
	// crash, recover — byte-identical, like any home-grown full-path session.
	runScript(t, b, name, ops[5:], true)
	want2 := managerSnapshot(t, b, name)
	rm, report := recoverInto(t, bWAL, -1)
	if len(report) != 1 || report[0].Err != nil {
		t.Fatalf("recovering adopted session: %+v", report)
	}
	if report[0].CheckpointLSN != gotLSN {
		t.Fatalf("recovery resumed checkpoint LSN %d, want the handoff LSN %d", report[0].CheckpointLSN, gotLSN)
	}
	if got := managerSnapshot(t, rm, name); !bytes.Equal(got, want2) {
		t.Fatal("recovered adopted session differs from its live state")
	}
}

func TestHandoffSendFailureKeepsSession(t *testing.T) {
	d := testCrowd(t, 12, 4, 5)
	ctx := context.Background()
	walDir := t.TempDir()
	m, err := NewManager(walManagerConfig(t, walDir, -1))
	if err != nil {
		t.Fatal(err)
	}
	const name = "staying"
	if err := m.Create(ctx, name, d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}
	sendErr := errors.New("target unreachable")
	if err := m.HandoffSession(ctx, name, func([]byte, uint64) error { return sendErr }); !errors.Is(err, sendErr) {
		t.Fatalf("HandoffSession = %v, want the send error", err)
	}
	// The session still serves, mutates and logs.
	if _, err := m.Submit(ctx, name, 0, d.Truth[0]); err != nil {
		t.Fatalf("Submit after failed handoff: %v", err)
	}
	if _, err := os.Stat(filepath.Join(walDir, name+".wal")); err != nil {
		t.Fatalf("WAL gone after failed handoff: %v", err)
	}
}

// TestFollowerReplicationViaWALTail drives the whole follower pipeline
// in-process: snapshot reset, tailing the leader's log, applying each record
// through ReplicaApply — and asserts the follower's state is byte-identical
// to the leader's, including a deterministically re-failing record.
func TestFollowerReplicationViaWALTail(t *testing.T) {
	d := testCrowd(t, 16, 5, 11)
	extra := testCrowd(t, 16, 3, 13)
	ctx := context.Background()
	const name = "followed"

	leader, err := NewManager(walManagerConfig(t, t.TempDir(), -1))
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Create(ctx, name, d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}
	ops := walScript(d, extra)
	runScript(t, leader, name, ops[:4], true)

	follower, err := NewManager(walManagerConfig(t, t.TempDir(), -1))
	if err != nil {
		t.Fatal(err)
	}
	snap, lsn, err := leader.SnapshotWithLSN(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.ReplicaReset(ctx, name, snap, lsn); err != nil {
		t.Fatalf("ReplicaReset: %v", err)
	}

	// The leader keeps mutating — including ops[4], which fails live and must
	// re-fail identically on the follower.
	runScript(t, leader, name, ops[4:], true)

	path, err := leader.SessionWALPath(name)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := wal.OpenTailer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	applied := 0
	for {
		rec, recLSN, err := tl.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("tailing leader log: %v", err)
		}
		if recLSN <= lsn {
			continue // covered by the reset snapshot
		}
		if err := follower.ReplicaApply(ctx, name, recLSN, rec); err != nil {
			t.Fatalf("ReplicaApply LSN %d: %v", recLSN, err)
		}
		applied++
	}
	if applied == 0 {
		t.Fatal("no records streamed beyond the reset point")
	}

	leaderLSN, _ := leader.SessionLSN(name)
	followerLSN, _ := follower.SessionLSN(name)
	if leaderLSN != followerLSN {
		t.Fatalf("follower LSN %d != leader LSN %d", followerLSN, leaderLSN)
	}
	wantSnap := managerSnapshot(t, leader, name)
	gotSnap := managerSnapshot(t, follower, name)
	if !bytes.Equal(gotSnap, wantSnap) {
		t.Fatal("follower state diverged from the leader")
	}

	// Duplicate records (reconnect signature) are skipped without mutating...
	dup := submitRecord(0, d.Truth[0])
	if err := follower.ReplicaApply(ctx, name, followerLSN, dup); err != nil {
		t.Fatalf("duplicate ReplicaApply: %v", err)
	}
	if got := managerSnapshot(t, follower, name); !bytes.Equal(got, wantSnap) {
		t.Fatal("duplicate apply mutated the replica")
	}
	// ...and a gap is rejected through ErrBadWAL so the follower resets.
	if err := follower.ReplicaApply(ctx, name, followerLSN+7, dup); !errors.Is(err, cverr.ErrBadWAL) {
		t.Fatalf("gapped ReplicaApply = %v, want ErrBadWAL", err)
	}
}

// TestWALFlushEachRecordVisibility pins the WALFlushEachRecord contract: with
// a buffered sync policy a tailer sees each record as soon as the mutation is
// acknowledged, instead of at the next sync point.
func TestWALFlushEachRecordVisibility(t *testing.T) {
	d := testCrowd(t, 12, 4, 5)
	ctx := context.Background()
	cfg := ManagerConfig{
		ParkDir:            t.TempDir(),
		CheckpointEvery:    -1,
		WALFlushEachRecord: true,
	}.WithWAL(t.TempDir(), wal.SyncPolicy{Mode: wal.SyncInterval, Interval: 1 << 20})
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const name = "fresh"
	if err := m.Create(ctx, name, d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}
	path, err := m.SessionWALPath(name)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := wal.OpenTailer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	if _, lsn, err := tl.Next(); err != nil || lsn != 1 {
		t.Fatalf("create record not visible: LSN %d, %v", lsn, err)
	}
	if _, err := m.Submit(ctx, name, 0, d.Truth[0]); err != nil {
		t.Fatal(err)
	}
	// The sync interval is effectively infinite, so only the per-record flush
	// can have made this record visible.
	rec, lsn, err := tl.Next()
	if err != nil || lsn != 2 || rec.Type != wal.RecSubmit {
		t.Fatalf("submitted record not visible after ack: type %d LSN %d, %v", rec.Type, lsn, err)
	}
}

// TestCloseRacesCoalescedIngest is the graceful-shutdown satellite: Manager.
// Close racing a storm of concurrent (coalescing) ingests must leave every
// acknowledged answer durable and every other request cleanly rejected —
// never a dropped ack, never a hung ticket. The buffered sync policy makes
// the flush in Close load-bearing: without it, acked records would sit in
// appender buffers.
func TestCloseRacesCoalescedIngest(t *testing.T) {
	d := testCrowd(t, 12, 4, 7)
	ctx := context.Background()
	walDir := t.TempDir()
	cfg := ManagerConfig{ParkDir: t.TempDir(), CheckpointEvery: -1}.
		WithWAL(walDir, wal.SyncPolicy{Mode: wal.SyncInterval, Interval: 1 << 20})
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const name = "closing"
	if err := m.Create(ctx, name, d.Answers.Clone(), sessionOpts(crowdval.WithDeltaIngest())...); err != nil {
		t.Fatal(err)
	}
	var initial int
	if err := m.View(ctx, name, func(s *crowdval.Session) error {
		initial = s.AnswerCount()
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	const requests = 32
	var acked atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// One answer per request from a unique new worker, so durability
			// is countable: recovered answers = initial + acked requests.
			_, err := m.AddAnswers(ctx, name, []crowdval.Answer{{
				Object: i % d.Answers.NumObjects(),
				Worker: d.Answers.NumWorkers() + i,
				Label:  1,
			}})
			if err == nil {
				acked.Add(1)
			}
		}(i)
	}
	closeDone := make(chan error, 1)
	close(start)
	go func() { closeDone <- m.Close() }()
	wg.Wait()
	if err := <-closeDone; err != nil {
		t.Fatalf("Close: %v", err)
	}

	rm, report := recoverInto(t, walDir, -1)
	if len(report) != 1 || report[0].Err != nil {
		t.Fatalf("recovery after close: %+v", report)
	}
	var recovered int
	if err := rm.View(ctx, name, func(s *crowdval.Session) error {
		recovered = s.AnswerCount()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := initial + int(acked.Load())
	if recovered != want {
		t.Fatalf("recovered %d answers, want %d (initial %d + %d acked): an acked ingest was dropped or an unacked one leaked",
			recovered, want, initial, acked.Load())
	}
}

func TestHealthAndReadyEndpoints(t *testing.T) {
	manager, err := NewManager(ManagerConfig{ParkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(manager)
	hs := httptest.NewServer(srv)
	defer hs.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if status, body := get("/healthz"); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", status, body)
	}
	// Not ready until recovery finished.
	if status, _ := get("/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz before SetReady = %d, want 503", status)
	}
	srv.SetReady(true)
	if status, body := get("/readyz"); status != http.StatusOK || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("readyz after SetReady = %d %q", status, body)
	}
	srv.SetDraining(true)
	if status, body := get("/readyz"); status != http.StatusServiceUnavailable || !strings.Contains(body, `"draining":true`) {
		t.Fatalf("readyz while draining = %d %q", status, body)
	}
	// Liveness is unaffected by drain.
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", status)
	}
}

func TestOwnerCheckGatesWritePaths(t *testing.T) {
	d := testCrowd(t, 8, 4, 3)
	manager, err := NewManager(ManagerConfig{ParkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(manager)
	const owner = "10.0.0.2:7001"
	srv.SetOwnerCheck(func(name string) error {
		if name == "mine" {
			return nil
		}
		return &NotOwnerError{Name: name, Owner: owner}
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := &client{t: t, base: hs.URL, http: hs.Client()}

	c.must("POST", "/v1/sessions", CreateSessionRequest{
		Name: "mine", Matrix: matrixOf(d.Answers), Options: SessionConfig{Strategy: "baseline", Seed: 1},
	}, nil)

	misdirected := func(method, path string, body any) {
		t.Helper()
		status, errResp := c.do(method, path, body, nil)
		if status != http.StatusMisdirectedRequest {
			t.Fatalf("%s %s = %d, want 421", method, path, status)
		}
		if errResp.Code != "ErrNotOwner" || errResp.Owner != owner {
			t.Fatalf("%s %s error = %+v, want code ErrNotOwner with owner %s", method, path, errResp, owner)
		}
	}
	misdirected("POST", "/v1/sessions", CreateSessionRequest{Name: "theirs", Matrix: matrixOf(d.Answers)})
	misdirected("POST", "/v1/sessions/theirs/answers", IngestRequest{Answers: []AnswerJSON{{Object: 0, Worker: 0, Label: 1}}})
	misdirected("GET", "/v1/sessions/theirs/next", nil)
	misdirected("POST", "/v1/sessions/theirs/validations", SubmitRequest{Validations: []ValidationJSON{{Object: 0, Label: 1}}})
	misdirected("DELETE", "/v1/sessions/theirs", nil)

	// Reads are not owner-gated: a replica may serve them. An absent session
	// is still a plain 404.
	if status, _ := c.do("GET", "/v1/sessions/theirs/result", nil, nil); status != http.StatusNotFound {
		t.Fatalf("GET result of unowned absent session = %d, want 404", status)
	}
	// The owned session is untouched by the gate.
	c.must("GET", "/v1/sessions/mine/result", nil, nil)
}

func TestOverloadedResponseCarriesRetryAfter(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, fmt.Errorf("%w: queue full", cverr.ErrOverloaded))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want %q", got, "1")
	}
	rec = httptest.NewRecorder()
	writeError(rec, fmt.Errorf("%w: nope", cverr.ErrSessionNotFound))
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Fatalf("Retry-After on a 404 = %q, want unset", got)
	}
}

func TestClusterStatsInMetricsEndpoints(t *testing.T) {
	manager, err := NewManager(ManagerConfig{ParkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(manager)
	sample := ClusterStats{
		Self: "127.0.0.1:7001", Peers: 3,
		SessionsOwned: 5, FollowedSessions: 2,
		HandoffsIn: 1, HandoffsOut: 4,
		ReplicationLagLSN: 7, Promotions: 1, NotOwnerRejects: 9,
	}
	srv.SetClusterStats(func() ClusterStats { return sample })
	hs := httptest.NewServer(srv)
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"crowdval_cluster_peers 3",
		"crowdval_cluster_sessions_owned 5",
		"crowdval_cluster_sessions_followed 2",
		"crowdval_cluster_handoffs_in_total 1",
		"crowdval_cluster_handoffs_out_total 4",
		"crowdval_cluster_replication_lag_lsns 7",
		"crowdval_cluster_promotions_total 1",
		"crowdval_cluster_not_owner_total 9",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	c := &client{t: t, base: hs.URL, http: hs.Client()}
	var mr MetricsResponse
	c.must("GET", "/v1/metrics", nil, &mr)
	if mr.Cluster == nil || *mr.Cluster != sample {
		t.Fatalf("/v1/metrics cluster = %+v, want %+v", mr.Cluster, sample)
	}
}
