package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"crowdval"
)

// TestNextKChurnBitForBit extends the concurrent bit-for-bit contract to the
// maintained selection view: a delta-scoring session serves a storm of
// concurrent GET /next?k= requests interleaved with ingest and validation
// churn, every ranking respects the ordering contract, and the final state
// still matches a serial replay byte for byte — the ranked reads are
// genuinely read-only no matter how the maintained index is patched, rebuilt
// and memoized underneath them. It also pins the score_index_{builds,patches}
// observability: the JSON stats and the Prometheus exposition must both carry
// the maintained-view counters, with the patch path actually taken.
func TestNextKChurnBitForBit(t *testing.T) {
	const steps = 12
	c, _ := newTestServer(t, 0)

	d := testCrowd(t, 40, 10, 42)
	baseMatrix := matrixOf(d.Answers)
	var extras []crowdval.Answer
	for o := 0; o < d.Answers.NumObjects(); o++ {
		for w := 0; w < d.Answers.NumWorkers(); w++ {
			if baseMatrix[o][w] >= 0 && (o+w)%7 == 0 {
				extras = append(extras, crowdval.Answer{Object: o, Worker: w, Label: crowdval.Label(baseMatrix[o][w])})
				baseMatrix[o][w] = -1
			}
		}
	}
	chunks := make([][]crowdval.Answer, 3)
	for j, a := range extras {
		chunks[j%3] = append(chunks[j%3], a)
	}
	options := SessionConfig{
		Strategy: string(crowdval.StrategyUncertainty), Seed: 9, CandidateLimit: 8,
		Delta: true, DeltaScoring: true,
	}
	c.must("POST", "/v1/sessions", CreateSessionRequest{
		Name: "churn", Matrix: baseMatrix, NumLabels: 2, Options: options,
	}, nil)

	checkRanking := func(next NextResponse, k int) error {
		if len(next.Ranking) == 0 || len(next.Ranking) > k {
			return fmt.Errorf("ranking has %d entries for k=%d", len(next.Ranking), k)
		}
		if next.Object != next.Ranking[0].Object {
			return fmt.Errorf("object %d != ranking head %d", next.Object, next.Ranking[0].Object)
		}
		for i := 1; i < len(next.Ranking); i++ {
			prev, cur := next.Ranking[i-1], next.Ranking[i]
			if prev.Score < cur.Score || (prev.Score == cur.Score && prev.Object > cur.Object) {
				return fmt.Errorf("ranking order violated: %+v", next.Ranking)
			}
		}
		return nil
	}

	lowestUnvalidated := func(validated []int, total, n int) []int {
		isValidated := make(map[int]bool, len(validated))
		for _, o := range validated {
			isValidated[o] = true
		}
		var picks []int
		for o := 0; o < total && len(picks) < n; o++ {
			if !isValidated[o] {
				picks = append(picks, o)
			}
		}
		return picks
	}

	errs := make(chan error, 8)
	done := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: a deterministic, selection-free mutation sequence. Concurrent
	// ranked reads must not be able to perturb it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for step := 0; step < steps; step++ {
			if step%4 == 0 && step/4 < len(chunks) {
				answers := make([]AnswerJSON, len(chunks[step/4]))
				for j, a := range chunks[step/4] {
					answers[j] = AnswerJSON{Object: a.Object, Worker: a.Worker, Label: int(a.Label)}
				}
				if status, e := c.do("POST", "/v1/sessions/churn/answers", IngestRequest{Answers: answers}, nil); e != nil {
					errs <- fmt.Errorf("ingest step %d: status %d %+v", step, status, e)
					return
				}
				continue
			}
			var result ResultResponse
			if status, e := c.do("GET", "/v1/sessions/churn/result", nil, &result); e != nil {
				errs <- fmt.Errorf("result step %d: status %d %+v", step, status, e)
				return
			}
			picks := lowestUnvalidated(result.Validated, result.Objects, 1)
			batch := make([]ValidationJSON, len(picks))
			for j, o := range picks {
				batch[j] = ValidationJSON{Object: o, Label: int(d.Truth[o])}
			}
			if status, e := c.do("POST", "/v1/sessions/churn/validations", SubmitRequest{Validations: batch}, nil); e != nil {
				errs <- fmt.Errorf("submit step %d: status %d %+v", step, status, e)
				return
			}
		}
	}()

	// Readers: hammer ranked selections with varying k until the writer is
	// done, checking the ordering contract on every response.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				k := 1 + (g+i)%5
				var next NextResponse
				if status, e := c.do("GET", fmt.Sprintf("/v1/sessions/churn/next?k=%d", k), nil, &next); e != nil {
					errs <- fmt.Errorf("reader %d: status %d %+v", g, status, e)
					return
				}
				if err := checkRanking(next, k); err != nil {
					errs <- fmt.Errorf("reader %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Serial replay of the writer's sequence on a plain Session — no server,
	// no concurrent reads — must land on the identical snapshot.
	answers, err := crowdval.NewAnswerSetFromMatrix(baseMatrix, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := crowdval.NewSession(answers, options.libraryOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for step := 0; step < steps; step++ {
		if step%4 == 0 && step/4 < len(chunks) {
			if err := ref.AddAnswers(ctx, chunks[step/4]); err != nil {
				t.Fatalf("replay ingest step %d: %v", step, err)
			}
			continue
		}
		validation := ref.Validation()
		var validated []int
		for o := 0; o < ref.NumObjects(); o++ {
			if validation.Validated(o) {
				validated = append(validated, o)
			}
		}
		picks := lowestUnvalidated(validated, ref.NumObjects(), 1)
		batch := make([]crowdval.ValidationInput, len(picks))
		for j, o := range picks {
			batch[j] = crowdval.ValidationInput{Object: o, Label: d.Truth[o]}
		}
		if _, err := ref.SubmitValidations(ctx, batch); err != nil {
			t.Fatalf("replay submit step %d: %v", step, err)
		}
	}
	want, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.snapshotBytes("churn"); !bytes.Equal(got, want) {
		t.Fatalf("server snapshot differs from serial replay (%d vs %d bytes) — ranked reads perturbed the session", len(got), len(want))
	}

	// Maintained-view observability: the JSON stats carry both counters, the
	// patch path was actually exercised by the churn, and the Prometheus
	// exposition exports them.
	var stats Stats
	c.must("GET", "/v1/metrics", nil, &stats)
	if stats.ScoreIndexBuilds == 0 {
		t.Fatalf("no score index builds recorded: %+v", stats)
	}
	if stats.ScoreIndexPatches == 0 {
		t.Fatalf("churn over a delta session recorded no index patches: %+v", stats)
	}
	resp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	for _, name := range []string{"crowdval_score_index_builds_total", "crowdval_score_index_patches_total"} {
		if !strings.Contains(string(raw), name) {
			t.Fatalf("Prometheus exposition missing %s:\n%s", name, raw)
		}
	}
}
