package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crowdval/internal/cverr"
	"crowdval/internal/fault"
)

// These tests drive the degraded read-only mode end to end with injected
// disk faults: a durability failure must reject mutations with ErrDegraded
// (HTTP 503 + Retry-After) while reads keep serving, and clearing the fault
// must heal the session back to full service without a restart — with the
// healed state byte-equal to a serial replay of exactly the acknowledged ops.

// faultManagerConfig is walManagerConfig plus a fault injector.
func faultManagerConfig(t testing.TB, walDir string, ckptEvery int, in *fault.Injector) ManagerConfig {
	t.Helper()
	cfg := walManagerConfig(t, walDir, ckptEvery)
	cfg.FaultInjector = in
	return cfg
}

// TestDegradedReadOnlyAndProbeHeal: an fsync fault degrades the session to
// read-only (mutations carry ErrDegraded, reads serve the pre-fault state),
// the probe loop keeps it degraded while the fault persists, and heals it —
// accepting mutations again — once the fault clears. Recovery from the healed
// on-disk state must be byte-equal to the live session.
func TestDegradedReadOnlyAndProbeHeal(t *testing.T) {
	d := testCrowd(t, 16, 5, 101)
	extra := testCrowd(t, 16, 3, 103)
	walDir := t.TempDir()
	in := fault.NewInjector()
	m, err := NewManager(faultManagerConfig(t, walDir, -1, in))
	if err != nil {
		t.Fatal(err)
	}
	const name = "wounded"
	ctx := context.Background()
	if err := m.Create(ctx, name, d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}
	runScript(t, m, name, walScript(d, extra), true)
	want := managerSnapshot(t, m, name)

	// Every fsync in the WAL directory now fails — session logs and the
	// health probe alike.
	in.Arm(fault.Rule{Op: fault.OpSync, Err: fault.ErrIO})

	_, err = m.Submit(ctx, name, 10, d.Truth[10])
	if !errors.Is(err, cverr.ErrDegraded) {
		t.Fatalf("mutation on a failing disk: %v, want ErrDegraded", err)
	}
	if status := statusFor(err); status != http.StatusServiceUnavailable {
		t.Fatalf("ErrDegraded maps to %d, want 503", status)
	}
	// Already degraded: the rejection comes from the state check now, and
	// must carry the same sentinel.
	if _, err := m.Submit(ctx, name, 11, d.Truth[11]); !errors.Is(err, cverr.ErrDegraded) {
		t.Fatalf("mutation on a degraded session: %v, want ErrDegraded", err)
	}

	// Reads keep serving the pre-fault state.
	if got := managerSnapshot(t, m, name); !bytes.Equal(got, want) {
		t.Fatal("degraded session serves a different state than before the fault")
	}
	stats := m.Stats()
	if stats.WALDegradedSessions != 1 || stats.DegradeEvents != 1 {
		t.Fatalf("degraded gauges: %d sessions / %d events, want 1/1", stats.WALDegradedSessions, stats.DegradeEvents)
	}
	if h := m.Health(); h.State != "degraded" || h.DegradedSessions != 1 {
		t.Fatalf("Health() = %+v, want degraded/1", h)
	}

	// While the disk still fails, the probe must fail and hold the session
	// degraded — healing against a broken disk would lose the next mutation.
	if healed, err := m.ProbeOnce(ctx); err == nil || healed != 0 {
		t.Fatalf("probe on a failing disk healed %d sessions (err %v), want 0 and an error", healed, err)
	}
	if got := m.Stats().ProbeFailures; got != 1 {
		t.Fatalf("ProbeFailures = %d, want 1", got)
	}

	// The disk recovers: one probe pass heals the session without a restart.
	in.Clear()
	healed, err := m.ProbeOnce(ctx)
	if err != nil || healed != 1 {
		t.Fatalf("probe after clearing the fault: healed %d, err %v; want 1, nil", healed, err)
	}
	stats = m.Stats()
	if stats.WALDegradedSessions != 0 || stats.WALHeals != 1 {
		t.Fatalf("post-heal gauges: %d degraded / %d heals, want 0/1", stats.WALDegradedSessions, stats.WALHeals)
	}
	if h := m.Health(); h.State != "healthy" {
		t.Fatalf("Health() after heal = %+v, want healthy", h)
	}

	// Mutations flow again, and the on-disk state recovers byte-for-byte.
	if _, err := m.Submit(ctx, name, 10, d.Truth[10]); err != nil {
		t.Fatalf("mutation after heal: %v", err)
	}
	want = managerSnapshot(t, m, name)
	m2, report := recoverInto(t, walDir, -1)
	if len(report) != 1 || report[0].Err != nil {
		t.Fatalf("recovery report: %+v", report)
	}
	if got := managerSnapshot(t, m2, name); !bytes.Equal(got, want) {
		t.Fatal("recovery after heal diverged from the live state")
	}
}

// TestENOSPCReclaimWithoutDegrading: a full disk on append triggers the
// checkpoint-and-truncate reclaim and a single retry — the mutation is
// acknowledged, the session never degrades, and recovery reproduces the
// state exactly.
func TestENOSPCReclaimWithoutDegrading(t *testing.T) {
	d := testCrowd(t, 16, 5, 107)
	extra := testCrowd(t, 16, 3, 109)
	walDir := t.TempDir()
	in := fault.NewInjector()
	m, err := NewManager(faultManagerConfig(t, walDir, -1, in))
	if err != nil {
		t.Fatal(err)
	}
	const name = "full-disk"
	ctx := context.Background()
	if err := m.Create(ctx, name, d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}
	ops := walScript(d, extra)
	runScript(t, m, name, ops[:4], true)

	// Exactly one append to the live log reports ENOSPC. The reclaim's own
	// writes (checkpoint tmp, log rewrite) run after the rule is exhausted.
	in.Arm(fault.Rule{Op: fault.OpWrite, Match: name + ".wal", Count: 1, Err: fault.ErrNoSpace})

	if _, err := m.Submit(ctx, name, 10, d.Truth[10]); err != nil {
		t.Fatalf("mutation on a reclaimable full disk: %v, want success after reclaim", err)
	}
	stats := m.Stats()
	if stats.ENOSPCReclaims != 1 {
		t.Fatalf("ENOSPCReclaims = %d, want 1", stats.ENOSPCReclaims)
	}
	if stats.WALDegradedSessions != 0 || stats.DegradeEvents != 0 {
		t.Fatalf("ENOSPC reclaim degraded the session: %+v", stats)
	}

	runScript(t, m, name, ops[4:], true)
	want := managerSnapshot(t, m, name)
	m2, report := recoverInto(t, walDir, -1)
	if len(report) != 1 || report[0].Err != nil {
		t.Fatalf("recovery report: %+v", report)
	}
	if got := managerSnapshot(t, m2, name); !bytes.Equal(got, want) {
		t.Fatal("recovery after an ENOSPC reclaim diverged from the live state")
	}
}

// TestRotationFaultMatrix injects a fault — both EIO and ENOSPC — at every
// step of the checkpoint rotation sequence (checkpoint tmp write/fsync, the
// two checkpoint renames, the log-rewrite open/write/fsync, the log swap
// rename, and the post-swap reopen) and asserts the rotation is atomic or
// degrades: the session is either still fully healthy (the rotation had no
// effect and is retried at the next interval) or degraded-and-healable; the
// log is never installed shortened, so recovery always lands byte-equal on
// the acknowledged state.
func TestRotationFaultMatrix(t *testing.T) {
	d := testCrowd(t, 16, 5, 113)
	extra := testCrowd(t, 16, 3, 127)
	const name = "rotor"

	points := []struct {
		step string
		rule fault.Rule
		// wantDegraded: the fault lands after the point of no return (the
		// live log's handle is gone), so the session must degrade and heal.
		// Otherwise the rotation must fail cleanly with the session healthy.
		wantDegraded bool
	}{
		{step: "ckpt-tmp-write", rule: fault.Rule{Op: fault.OpWrite, Match: ".ckpt.tmp", Count: 1}},
		{step: "ckpt-tmp-fsync", rule: fault.Rule{Op: fault.OpSync, Match: ".ckpt.tmp", Count: 1}},
		{step: "demote-rename", rule: fault.Rule{Op: fault.OpRename, Match: ".ckpt.prev", Count: 1}},
		{step: "promote-rename", rule: fault.Rule{Op: fault.OpRename, Match: ".ckpt.tmp", Count: 1}},
		{step: "rewrite-open", rule: fault.Rule{Op: fault.OpOpen, Match: ".wal.tmp", Count: 1}},
		{step: "rewrite-write", rule: fault.Rule{Op: fault.OpWrite, Match: ".wal.tmp", Count: 1}},
		{step: "rewrite-fsync", rule: fault.Rule{Op: fault.OpSync, Match: ".wal.tmp", Count: 1}},
		{step: "swap-rename", rule: fault.Rule{Op: fault.OpRename, Match: ".wal.tmp", Count: 1}},
		// The first .wal open in a rotation is the rewrite tmp (skipped); the
		// second is the post-swap reopen of the live log.
		{step: "reopen", rule: fault.Rule{Op: fault.OpOpen, Match: ".wal", Skip: 1, Count: 1}, wantDegraded: true},
	}
	for _, p := range points {
		for _, ferr := range []error{fault.ErrIO, fault.ErrNoSpace} {
			t.Run(fmt.Sprintf("%s-%v", p.step, errors.Unwrap(ferr)), func(t *testing.T) {
				walDir := t.TempDir()
				in := fault.NewInjector()
				m, err := NewManager(faultManagerConfig(t, walDir, 3, in))
				if err != nil {
					t.Fatal(err)
				}
				ctx := context.Background()
				if err := m.Create(ctx, name, d.Answers.Clone(), sessionOpts()...); err != nil {
					t.Fatal(err)
				}
				ops := walScript(d, extra)
				runScript(t, m, name, ops[:2], true)

				rule := p.rule
				rule.Err = ferr
				in.Arm(rule)
				// The third mutation trips the rotation, which hits the fault.
				// The mutation itself was logged and applied before rotation
				// starts, so it is acknowledged either way.
				if _, err := m.Submit(ctx, name, 10, d.Truth[10]); err != nil {
					t.Fatalf("mutation tripping the faulty rotation: %v", err)
				}
				if got := in.Injected(); got == 0 {
					t.Fatal("the armed rotation fault never fired")
				}
				if got := m.Stats().CheckpointFailures; got != 1 {
					t.Fatalf("CheckpointFailures = %d, want 1", got)
				}

				stats := m.Stats()
				if p.wantDegraded {
					if stats.WALDegradedSessions != 1 {
						t.Fatalf("post-swap fault left the session healthy: %+v", stats)
					}
					// Degraded is read-only until the probe loop heals it.
					if _, err := m.Submit(ctx, name, 11, d.Truth[11]); !errors.Is(err, cverr.ErrDegraded) {
						t.Fatalf("degraded rotation victim accepted a mutation: %v", err)
					}
					in.Clear()
					if healed, err := m.ProbeOnce(ctx); err != nil || healed != 1 {
						t.Fatalf("heal after rotation fault: healed %d, err %v", healed, err)
					}
				} else {
					if stats.WALDegradedSessions != 0 || stats.WALFailStopSessions != 0 {
						t.Fatalf("pre-swap rotation fault was not atomic: %+v", stats)
					}
				}

				// Full service from here: the rest of the script lands, and a
				// crash-recovery reproduces the acknowledged state exactly —
				// proving no rotation step installed a shortened log.
				runScript(t, m, name, ops[3:], true)
				want := managerSnapshot(t, m, name)
				m2, report := recoverInto(t, walDir, 3)
				if len(report) != 1 || report[0].Err != nil {
					t.Fatalf("recovery report: %+v", report)
				}
				if got := managerSnapshot(t, m2, name); !bytes.Equal(got, want) {
					t.Fatal("recovery after a rotation fault diverged from the live state")
				}
			})
		}
	}
}

// TestDegradedHTTPSurface proves the degraded mode at the HTTP boundary:
// mutations answer 503 with a Retry-After header and the ErrDegraded code,
// reads answer 200, /readyz stays 200 but reports the health detail, the
// Prometheus endpoint carries the gauge — and after the fault clears and the
// probe heals, mutations answer 200 again. The live demonstration the issue
// asks for, minus the separate process.
func TestDegradedHTTPSurface(t *testing.T) {
	d := testCrowd(t, 16, 5, 131)
	walDir := t.TempDir()
	in := fault.NewInjector()
	m, err := NewManager(faultManagerConfig(t, walDir, -1, in))
	if err != nil {
		t.Fatal(err)
	}
	api := New(m)
	api.SetReady(true)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)

	const name = "web"
	ctx := context.Background()
	if err := m.Create(ctx, name, d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}

	submit := func(object int) *http.Response {
		t.Helper()
		body, _ := json.Marshal(SubmitRequest{Validations: []ValidationJSON{{Object: object, Label: int(d.Truth[object])}}})
		resp, err := http.Post(srv.URL+"/v1/sessions/"+name+"/validations", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		_, _ = io.Copy(&sb, resp.Body)
		resp.Body.Close()
		return resp, sb.String()
	}

	if resp := submit(0); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy submit: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	in.Arm(fault.Rule{Op: fault.OpSync, Err: fault.ErrIO})

	resp := submit(1)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded submit: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("degraded 503 carries no Retry-After header")
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if er.Code != "ErrDegraded" {
		t.Fatalf("degraded 503 code %q, want ErrDegraded", er.Code)
	}

	// Reads still answer 200 on the degraded session.
	for _, path := range []string{
		"/v1/sessions/" + name + "/result",
		"/v1/sessions/" + name + "/snapshot",
		"/v1/sessions/" + name + "/next",
		"/v1/metrics",
	} {
		if resp, _ := get(path); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s on a degraded node: status %d, want 200", path, resp.StatusCode)
		}
	}

	// /readyz stays 200 — the node serves reads — but reports the detail.
	readyResp, readyBody := get("/readyz")
	if readyResp.StatusCode != http.StatusOK {
		t.Fatalf("degraded /readyz: status %d, want 200", readyResp.StatusCode)
	}
	var ready ReadyResponse
	if err := json.Unmarshal([]byte(readyBody), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Health != "degraded" || ready.DegradedSessions != 1 {
		t.Fatalf("degraded /readyz body: %+v", ready)
	}
	if _, prom := get("/metrics"); !strings.Contains(prom, "crowdval_wal_degraded_sessions 1") {
		t.Fatalf("/metrics does not show the degraded gauge:\n%s", prom)
	}

	// Clear the fault, heal, and the same mutation goes through.
	in.Clear()
	if healed, err := m.ProbeOnce(ctx); err != nil || healed != 1 {
		t.Fatalf("heal: %d, %v", healed, err)
	}
	if resp := submit(1); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-heal submit: status %d, want 200", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if _, readyBody := get("/readyz"); !strings.Contains(readyBody, `"health":"healthy"`) {
		t.Fatalf("post-heal /readyz body: %s", readyBody)
	}
}
