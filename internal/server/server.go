package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"crowdval"
)

// DefaultMaxBodyBytes bounds request bodies (dense matrices and ingestion
// batches are the large ones).
const DefaultMaxBodyBytes = 64 << 20

// MaxNextK caps the ?k= of the next-object endpoint: a ranking is scored in
// one pass, but serializing tens of thousands of candidates per request is a
// foot-gun for clients that meant "a page of suggestions".
const MaxNextK = 1000

// Server is the HTTP facade over a Manager. It speaks JSON and serves:
//
//	POST   /v1/sessions                      create a session
//	GET    /v1/sessions                      list sessions
//	POST   /v1/sessions/{name}/resume        create a session from a snapshot body
//	GET    /v1/sessions/{name}/snapshot      download the session snapshot
//	POST   /v1/sessions/{name}/answers       ingest crowd answers (AddAnswers)
//	GET    /v1/sessions/{name}/next          next-object guidance (?k= for a top-k ranking)
//	GET    /v1/next                          global cross-session guidance (?k=, ?parked=1 to scan parked sessions too)
//	POST   /v1/sessions/{name}/budget        install or replace the session's monetary budget
//	POST   /v1/sessions/{name}/validations   submit one validation or a batch
//	GET    /v1/sessions/{name}/result        current estimates (?probabilities=1)
//	DELETE /v1/sessions/{name}               delete a session
//	GET    /v1/metrics                       manager statistics (JSON)
//	GET    /metrics                          manager statistics (Prometheus text)
//	GET    /healthz                          liveness probe (always 200 while serving)
//	GET    /readyz                           readiness probe (200 once recovery finished and not draining)
//
// Every handler honors the request context: a client that disconnects or a
// ?timeout= that expires cancels the in-flight session operation, which rolls
// back exactly as the library guarantees (the session stays consistent and
// the operation can be retried). Errors carry the sentinel name from the
// crowdval error taxonomy in the "code" field.
type Server struct {
	manager *Manager
	mux     *http.ServeMux
	// MaxBodyBytes caps request body sizes; DefaultMaxBodyBytes when zero.
	MaxBodyBytes int64

	// ready flips to true once recovery has finished (SetReady); draining
	// flips to true when a drain-on-shutdown walk starts (SetDraining). Both
	// feed /readyz, which is how the router and orchestrators keep traffic
	// away from a node that cannot own sessions yet (or anymore).
	ready    atomic.Bool
	draining atomic.Bool
	// ownerCheck gates session-owning operations when the server is part of a
	// cluster fabric: non-nil, it is consulted with the session name and its
	// error (a *NotOwnerError, HTTP 421 with the owner's address) rejects the
	// request. nil means standalone — every session is local.
	ownerCheck func(name string) error
	// clusterStats, when non-nil, contributes the cluster fabric's counters
	// to both metrics endpoints. It must be cheap and lock-free (atomics), as
	// the scrape path guarantees.
	clusterStats func() ClusterStats
}

// New builds the HTTP facade for a manager.
func New(m *Manager) *Server {
	s := &Server{manager: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("POST /v1/sessions/{name}/resume", s.handleResume)
	s.mux.HandleFunc("GET /v1/sessions/{name}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/sessions/{name}/answers", s.handleIngest)
	s.mux.HandleFunc("GET /v1/sessions/{name}/next", s.handleNext)
	s.mux.HandleFunc("GET /v1/next", s.handleGlobalNext)
	s.mux.HandleFunc("POST /v1/sessions/{name}/budget", s.handleSetBudget)
	s.mux.HandleFunc("POST /v1/sessions/{name}/validations", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sessions/{name}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /v1/sessions/{name}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics", s.handlePrometheus)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SetReady records that recovery has finished and the node may own traffic;
// /readyz reports 200 from here on (unless draining).
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SetDraining marks the node as handing its sessions off before shutdown;
// /readyz reports 503 so routers stop sending it new work.
func (s *Server) SetDraining(draining bool) { s.draining.Store(draining) }

// SetOwnerCheck installs the cluster fabric's ownership gate; call it before
// the server starts handling requests.
func (s *Server) SetOwnerCheck(check func(name string) error) { s.ownerCheck = check }

// SetClusterStats installs the cluster fabric's counter source for the
// metrics endpoints; call it before the server starts handling requests.
func (s *Server) SetClusterStats(stats func() ClusterStats) { s.clusterStats = stats }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

// ReadyResponse is the body of GET /readyz.
type ReadyResponse struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	// Health is the WAL durability state of the managed sessions: "healthy",
	// "degraded" (some sessions read-only while the probe loop heals them) or
	// "failstop" (some sessions need a restart to accept mutations again).
	Health string `json:"health"`
	// DegradedSessions / FailStopSessions count the sessions in each failure
	// state.
	DegradedSessions int64 `json:"degradedSessions"`
	FailStopSessions int64 `json:"failStopSessions"`
}

// handleReadyz reports readiness. A merely degraded node stays 200: reads
// still serve and the probe loop heals mutations back without a restart, so
// pulling the node out of rotation would turn a partial outage into a full
// one. The body carries the health detail for operators and orchestrators
// that want to alert or reschedule on it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.manager.Health()
	resp := ReadyResponse{
		Ready:            s.ready.Load(),
		Draining:         s.draining.Load(),
		Health:           h.State,
		DegradedSessions: h.DegradedSessions,
		FailStopSessions: h.FailStopSessions,
	}
	status := http.StatusOK
	if !resp.Ready || resp.Draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// checkOwner applies the cluster ownership gate to a session-owning request;
// false means the rejection was already written.
func (s *Server) checkOwner(w http.ResponseWriter, name string) bool {
	if s.ownerCheck == nil {
		return true
	}
	if err := s.ownerCheck(name); err != nil {
		writeError(w, err)
		return false
	}
	return true
}

func (s *Server) maxBody() int64 {
	if s.MaxBodyBytes > 0 {
		return s.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

// requestContext derives the operation context: the request's own context
// (cancelled when the client goes away) optionally bounded by a ?timeout=
// duration.
func requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return ctx, func() {}, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return nil, nil, &badRequestError{msg: "invalid timeout " + raw}
	}
	ctx, cancel := context.WithTimeout(ctx, d)
	return ctx, cancel, nil
}

// badRequestError marks client errors that carry no library sentinel (e.g.
// malformed JSON or query parameters).
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	defer cancel()
	var req CreateSessionRequest
	if err := decodeJSON(r, s.maxBody(), &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if !s.checkOwner(w, req.Name) {
		return
	}
	answers, err := req.answerSet()
	if err != nil {
		writeError(w, err)
		return
	}
	if err := s.manager.Create(ctx, req.Name, answers, req.Options.options()...); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, SessionSummary{
		Name:    req.Name,
		Objects: answers.NumObjects(),
		Workers: answers.NumWorkers(),
		Labels:  answers.NumLabels(),
		Answers: answers.AnswerCount(),
	})
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	defer cancel()
	name := r.PathValue("name")
	if !s.checkOwner(w, name) {
		return
	}
	body := http.MaxBytesReader(nil, r.Body, s.maxBody())
	if err := s.manager.CreateFromSnapshot(ctx, name, body); err != nil {
		writeError(w, err)
		return
	}
	var summary SessionSummary
	err = s.manager.View(ctx, name, func(sess *crowdval.Session) error {
		summary = SessionSummary{
			Name:    name,
			Objects: sess.NumObjects(),
			Workers: sess.NumWorkers(),
			Labels:  sess.NumLabels(),
			Answers: sess.AnswerCount(),
		}
		return nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, summary)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	defer cancel()
	// The manager materializes the bytes (from the resident session or, for a
	// parked one, straight from its park file — no resume) before anything is
	// written, so failures still produce a JSON error response and a slow
	// download cannot stall the session's writers.
	data, err := s.manager.Snapshot(ctx, r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	defer cancel()
	var req IngestRequest
	if err := decodeJSON(r, s.maxBody(), &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	name := r.PathValue("name")
	if !s.checkOwner(w, name) {
		return
	}
	answers := make([]crowdval.Answer, len(req.Answers))
	for i, a := range req.Answers {
		answers[i] = crowdval.Answer{Object: a.Object, Worker: a.Worker, Label: crowdval.Label(a.Label)}
	}
	total, err := s.manager.AddAnswers(ctx, name, answers)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Ingested: len(answers), AnswerCount: total})
}

func (s *Server) handleNext(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	defer cancel()
	k, ok := parseK(w, r, 1)
	if !ok {
		return
	}
	// Next-object guidance mutates strategy state (the hybrid roulette draw),
	// so like the writers it is owner-only; result and snapshot reads may be
	// served from any node holding a copy.
	if !s.checkOwner(w, r.PathValue("name")) {
		return
	}
	ranked, err := s.manager.NextObjects(ctx, r.PathValue("name"), k)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := NextResponse{Object: ranked[0].Object, Ranking: make([]ScoredObjectJSON, len(ranked))}
	for i, c := range ranked {
		resp.Ranking[i] = ScoredObjectJSON{Object: c.Object, Score: c.Score}
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseK extracts and bounds the ?k= ranking size; def when absent. A write
// on the error path means the rejection was already sent.
func parseK(w http.ResponseWriter, r *http.Request, def int) (int, bool) {
	k := def
	if raw := r.URL.Query().Get("k"); raw != "" {
		var err error
		k, err = strconv.Atoi(raw)
		if err != nil || k < 1 || k > MaxNextK {
			writeJSON(w, http.StatusBadRequest,
				ErrorResponse{Error: fmt.Sprintf("invalid k %q (must be an integer in 1..%d)", raw, MaxNextK)})
			return 0, false
		}
	}
	return k, true
}

// handleGlobalNext serves the marketplace read: the global top-k next
// validations across every session of this node, ranked by gain per unit
// cost (see Manager.GlobalNext). It is deliberately not owner-gated — the
// answer describes only the sessions this node holds, and the router
// fan-outs it across the fabric to build the cluster-wide ranking.
func (s *Server) handleGlobalNext(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	defer cancel()
	k, ok := parseK(w, r, 1)
	if !ok {
		return
	}
	includeParked := r.URL.Query().Get("parked") == "1"
	cands, err := s.manager.GlobalNext(ctx, k, includeParked)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := GlobalNextResponse{Candidates: make([]GlobalCandidateJSON, len(cands))}
	for i, c := range cands {
		resp.Candidates[i] = GlobalCandidateJSON{
			Session: c.Session, Object: c.Object, Gain: c.Gain, GainPerCost: c.GainPerCost,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSetBudget(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	defer cancel()
	var req BudgetRequest
	if err := decodeJSON(r, s.maxBody(), &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if req.Budget <= 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "budget must be positive"})
		return
	}
	name := r.PathValue("name")
	if !s.checkOwner(w, name) {
		return
	}
	if err := s.manager.SetBudget(ctx, name, req.tracker()); err != nil {
		writeError(w, err)
		return
	}
	var resp BudgetResponse
	err = s.manager.View(ctx, name, func(sess *crowdval.Session) error {
		t, ok := sess.CostBudget()
		if !ok {
			return fmt.Errorf("server: session %q lost its budget after SetBudget", name)
		}
		theta := t.Theta
		if theta <= 0 {
			theta = crowdval.DefaultExpertCrowdCostRatio
		}
		resp = BudgetResponse{
			Theta:               theta,
			Budget:              t.Budget,
			Spent:               t.Spent,
			Remaining:           t.Remaining(),
			FeasibleValidations: t.FeasibleValidations(),
			Exhausted:           t.Exhausted(),
		}
		return nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	defer cancel()
	var req SubmitRequest
	if err := decodeJSON(r, s.maxBody(), &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if len(req.Validations) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "no validations in request"})
		return
	}
	name := r.PathValue("name")
	if !s.checkOwner(w, name) {
		return
	}
	var infos []crowdval.StepInfo
	if len(req.Validations) == 1 {
		v := req.Validations[0]
		info, err := s.manager.Submit(ctx, name, v.Object, crowdval.Label(v.Label))
		if err != nil {
			writeError(w, err)
			return
		}
		infos = []crowdval.StepInfo{info}
	} else {
		inputs := make([]crowdval.ValidationInput, len(req.Validations))
		for i, v := range req.Validations {
			inputs[i] = crowdval.ValidationInput{Object: v.Object, Label: crowdval.Label(v.Label)}
		}
		var err error
		infos, err = s.manager.SubmitBatch(ctx, name, inputs)
		if err != nil {
			writeError(w, err)
			return
		}
	}
	resp := SubmitResponse{Steps: make([]StepInfoJSON, len(infos))}
	for i, info := range infos {
		resp.Steps[i] = stepInfoJSON(info)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	defer cancel()
	withProbs := r.URL.Query().Get("probabilities") == "1"
	var resp ResultResponse
	err = s.manager.View(ctx, r.PathValue("name"), func(sess *crowdval.Session) error {
		assignment := sess.Result()
		resp.Labels = make([]int, len(assignment))
		for o, l := range assignment {
			resp.Labels[o] = int(l)
		}
		validation := sess.Validation()
		for o := 0; o < sess.NumObjects(); o++ {
			if validation.Validated(o) {
				resp.Validated = append(resp.Validated, o)
			}
		}
		if withProbs {
			probSet := sess.ProbabilisticResult()
			resp.Probabilities = make([][]float64, sess.NumObjects())
			for o := range resp.Probabilities {
				resp.Probabilities[o] = probSet.Assignment.Row(o)
			}
		}
		resp.Uncertainty = sess.Uncertainty()
		resp.EffortSpent = sess.EffortSpent()
		resp.EffortRatio = sess.EffortRatio()
		resp.Done = sess.Done()
		resp.QuarantinedWorkers = sess.QuarantinedWorkers()
		resp.Objects = sess.NumObjects()
		resp.Workers = sess.NumWorkers()
		resp.NumLabels = sess.NumLabels()
		resp.AnswerCount = sess.AnswerCount()
		return nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.checkOwner(w, r.PathValue("name")) {
		return
	}
	if err := s.manager.Delete(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.Sessions())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := MetricsResponse{Stats: s.manager.Stats()}
	if s.clusterStats != nil {
		c := s.clusterStats()
		resp.Cluster = &c
	}
	writeJSON(w, http.StatusOK, resp)
}
