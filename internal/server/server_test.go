package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"crowdval"
)

// testCrowd generates a small crowd with spammers so the detection and
// quarantine machinery fires during guided validation.
func testCrowd(t testing.TB, objects, workers int, seed int64) *crowdval.Dataset {
	t.Helper()
	d, err := crowdval.GenerateCrowd(crowdval.CrowdConfig{
		NumObjects: objects, NumWorkers: workers, NumLabels: 2,
		Mix:            crowdval.WorkerMix{Normal: 0.6, RandomSpammer: 0.2, UniformSpammer: 0.2},
		NormalAccuracy: 0.85,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// matrixOf converts an answer set to the dense wire form.
func matrixOf(answers *crowdval.AnswerSet) [][]int {
	matrix := make([][]int, answers.NumObjects())
	for o := range matrix {
		row := make([]int, answers.NumWorkers())
		for w := range row {
			row[w] = int(answers.Answer(o, w))
		}
		matrix[o] = row
	}
	return matrix
}

// client is a minimal JSON test client against the server under test.
type client struct {
	t    testing.TB
	base string
	http *http.Client
}

func newTestServer(t testing.TB, budget int64) (*client, *Manager) {
	t.Helper()
	manager, err := NewManager(ManagerConfig{MemoryBudget: budget, ParkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(manager))
	t.Cleanup(srv.Close)
	return &client{t: t, base: srv.URL, http: srv.Client()}, manager
}

// do issues a request and decodes the JSON response into out (ignored when
// nil). It returns the HTTP status and, for non-2xx, the error body.
func (c *client) do(method, path string, body, out any) (int, *ErrorResponse) {
	c.t.Helper()
	var reqBody io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		reqBody = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.base+path, reqBody)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if resp.StatusCode >= 400 {
		var errResp ErrorResponse
		_ = json.Unmarshal(raw, &errResp)
		return resp.StatusCode, &errResp
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: decoding %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode, nil
}

// must asserts a 2xx status.
func (c *client) must(method, path string, body, out any) {
	c.t.Helper()
	if status, errResp := c.do(method, path, body, out); errResp != nil {
		c.t.Fatalf("%s %s: status %d: %+v", method, path, status, errResp)
	}
}

func (c *client) snapshotBytes(name string) []byte {
	c.t.Helper()
	resp, err := c.http.Get(c.base + "/v1/sessions/" + name + "/snapshot")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("GET snapshot %s: status %d: %s", name, resp.StatusCode, raw)
	}
	return raw
}

func createOptions(seed int64) SessionConfig {
	return SessionConfig{
		Strategy:       "hybrid",
		Budget:         30,
		CandidateLimit: 4,
		Seed:           seed,
	}
}

func (cfg SessionConfig) libraryOptions() []crowdval.Option { return cfg.options() }

func TestServerEndToEnd(t *testing.T) {
	c, _ := newTestServer(t, 0)
	d := testCrowd(t, 20, 8, 3)

	var summary SessionSummary
	c.must("POST", "/v1/sessions", CreateSessionRequest{
		Name: "demo", Matrix: matrixOf(d.Answers), NumLabels: 2, Options: createOptions(7),
	}, &summary)
	if summary.Objects != 20 || summary.Workers != 8 || summary.Answers != d.Answers.AnswerCount() {
		t.Fatalf("create summary %+v", summary)
	}

	// Duplicate name conflicts.
	status, errResp := c.do("POST", "/v1/sessions", CreateSessionRequest{
		Name: "demo", Matrix: matrixOf(d.Answers), NumLabels: 2,
	}, nil)
	if status != http.StatusConflict || errResp.Code != "ErrSessionExists" {
		t.Fatalf("duplicate create: status %d, %+v", status, errResp)
	}

	// Guided step: next object, submit the truth label.
	var next NextResponse
	c.must("GET", "/v1/sessions/demo/next", nil, &next)
	var submit SubmitResponse
	c.must("POST", "/v1/sessions/demo/validations", SubmitRequest{
		Validations: []ValidationJSON{{Object: next.Object, Label: int(d.Truth[next.Object])}},
	}, &submit)
	if len(submit.Steps) != 1 || submit.Steps[0].Object != next.Object {
		t.Fatalf("submit steps %+v", submit.Steps)
	}

	// Resubmitting the same object conflicts and reports the sentinel.
	status, errResp = c.do("POST", "/v1/sessions/demo/validations", SubmitRequest{
		Validations: []ValidationJSON{{Object: next.Object, Label: int(d.Truth[next.Object])}},
	}, nil)
	if status != http.StatusConflict || errResp.Code != "ErrAlreadyValidated" {
		t.Fatalf("duplicate validation: status %d, %+v", status, errResp)
	}

	// Ingestion grows the answer count.
	var ingest IngestResponse
	c.must("POST", "/v1/sessions/demo/answers", IngestRequest{
		Answers: []AnswerJSON{{Object: 0, Worker: 0, Label: int(d.Truth[0])}},
	}, &ingest)
	if ingest.Ingested != 1 {
		t.Fatalf("ingest response %+v", ingest)
	}

	// Result reflects the validation and, on request, the probabilities.
	var result ResultResponse
	c.must("GET", "/v1/sessions/demo/result?probabilities=1", nil, &result)
	if len(result.Labels) != 20 || result.EffortSpent != 1 || len(result.Probabilities) != 20 {
		t.Fatalf("result %+v", result)
	}
	if len(result.Validated) != 1 || result.Validated[0] != next.Object {
		t.Fatalf("validated list %v", result.Validated)
	}
	if result.Labels[next.Object] != int(d.Truth[next.Object]) {
		t.Fatal("validated object does not carry the expert label")
	}

	// Snapshot → resume under a new name; the clone continues identically.
	snap := c.snapshotBytes("demo")
	resp, err := c.http.Post(c.base+"/v1/sessions/clone/resume", "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("resume status %d", resp.StatusCode)
	}
	var cloneNext, demoNext NextResponse
	c.must("GET", "/v1/sessions/clone/next", nil, &cloneNext)
	c.must("GET", "/v1/sessions/demo/next", nil, &demoNext)
	if cloneNext.Object != demoNext.Object {
		t.Fatalf("resumed clone diverged: next %d != %d", cloneNext.Object, demoNext.Object)
	}

	// Malformed snapshot body is a 400 with the sentinel name.
	resp, err = c.http.Post(c.base+"/v1/sessions/junk/resume", "application/octet-stream", strings.NewReader("not a snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	var errBody ErrorResponse
	json.NewDecoder(resp.Body).Decode(&errBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || errBody.Code != "ErrBadSnapshot" {
		t.Fatalf("junk resume: status %d, %+v", resp.StatusCode, errBody)
	}

	// Listing and metrics.
	var infos []SessionInfo
	c.must("GET", "/v1/sessions", nil, &infos)
	if len(infos) != 2 {
		t.Fatalf("sessions list %+v", infos)
	}
	var stats Stats
	c.must("GET", "/v1/metrics", nil, &stats)
	if stats.Sessions != 2 || stats.IngestedAnswers != 1 || stats.SubmittedValidations != 1 || stats.EMIterations == 0 {
		t.Fatalf("stats %+v", stats)
	}

	// Delete; the session is gone.
	c.must("DELETE", "/v1/sessions/clone", nil, nil)
	status, errResp = c.do("GET", "/v1/sessions/clone/result", nil, nil)
	if status != http.StatusNotFound || errResp.Code != "ErrSessionNotFound" {
		t.Fatalf("deleted session: status %d, %+v", status, errResp)
	}

	// Unknown sessions 404 with the sentinel name.
	status, errResp = c.do("GET", "/v1/sessions/nope/next", nil, nil)
	if status != http.StatusNotFound || errResp.Code != "ErrSessionNotFound" {
		t.Fatalf("unknown session: status %d, %+v", status, errResp)
	}

	// Invalid names are a client error.
	status, _ = c.do("POST", "/v1/sessions", CreateSessionRequest{
		Name: "../escape", Matrix: matrixOf(d.Answers), NumLabels: 2,
	}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("bad name: status %d, want 400", status)
	}

	// Snapshot of an unknown session is a JSON 404, not an empty 200.
	resp, err = c.http.Get(c.base + "/v1/sessions/ghost/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	errBody = ErrorResponse{}
	json.NewDecoder(resp.Body).Decode(&errBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || errBody.Code != "ErrSessionNotFound" {
		t.Fatalf("snapshot of unknown session: status %d, %+v", resp.StatusCode, errBody)
	}
}

func TestServerRequestTimeoutRollsBack(t *testing.T) {
	c, _ := newTestServer(t, 0)
	d := testCrowd(t, 30, 10, 5)
	c.must("POST", "/v1/sessions", CreateSessionRequest{
		Name: "slow", Matrix: matrixOf(d.Answers), NumLabels: 2, Options: createOptions(1),
	}, nil)

	var next NextResponse
	c.must("GET", "/v1/sessions/slow/next", nil, &next)

	// A 1ns deadline expires before the submission starts; the server reports
	// a gateway timeout and the session state is untouched.
	status, errResp := c.do("POST", "/v1/sessions/slow/validations?timeout=1ns", SubmitRequest{
		Validations: []ValidationJSON{{Object: next.Object, Label: int(d.Truth[next.Object])}},
	}, nil)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("timeout submit: status %d, %+v", status, errResp)
	}
	var result ResultResponse
	c.must("GET", "/v1/sessions/slow/result", nil, &result)
	if result.EffortSpent != 0 || len(result.Validated) != 0 {
		t.Fatalf("cancelled submission left state: %+v", result)
	}
	// The same submission succeeds with a sane deadline.
	c.must("POST", "/v1/sessions/slow/validations?timeout=30s", SubmitRequest{
		Validations: []ValidationJSON{{Object: next.Object, Label: int(d.Truth[next.Object])}},
	}, nil)
}

func TestManagerEvictionParksAndResumes(t *testing.T) {
	parkDir := t.TempDir()
	manager, err := NewManager(ManagerConfig{MemoryBudget: 1, ParkDir: parkDir})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	d1 := testCrowd(t, 15, 6, 1)
	d2 := testCrowd(t, 15, 6, 2)
	if err := manager.Create(ctx, "a", d1.Answers, crowdval.WithSeed(1)); err != nil {
		t.Fatal(err)
	}
	if err := manager.Create(ctx, "b", d2.Answers, crowdval.WithSeed(2)); err != nil {
		t.Fatal(err)
	}
	// Creating b exceeded the 1-byte budget, so a was parked.
	stats := manager.Stats()
	if stats.Parked == 0 || stats.Evictions == 0 {
		t.Fatalf("nothing parked under a 1-byte budget: %+v", stats)
	}
	entries, err := os.ReadDir(parkDir)
	if err != nil {
		t.Fatal(err)
	}
	var parkFiles []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".cvsn" {
			parkFiles = append(parkFiles, e.Name())
		}
	}
	if len(parkFiles) == 0 {
		t.Fatal("no park file written")
	}

	// Touching the parked session resumes it transparently and the operation
	// proceeds as if it never left.
	if _, err := manager.NextObject(ctx, "a"); err != nil {
		t.Fatalf("operation on parked session: %v", err)
	}
	if manager.Stats().Resumes == 0 {
		t.Fatal("resume not counted")
	}

	// A parked session's snapshot is served straight from the park file,
	// without waking the session: the resume counter must not move.
	if _, err := manager.NextObject(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	// After using b (budget still 1), a is parked again.
	resumesBefore := manager.Stats().Resumes
	data, err := manager.Snapshot(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crowdval.ResumeSession(data); err != nil {
		t.Fatalf("parked snapshot does not resume: %v", err)
	}
	if got := manager.Stats().Resumes; got != resumesBefore {
		t.Fatalf("snapshotting a parked session resumed it (%d -> %d resumes)", resumesBefore, got)
	}

	// Delete removes the park file.
	if err := manager.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(parkDir, "a.cvsn")); !os.IsNotExist(err) {
		t.Fatalf("park file survived delete: %v", err)
	}
	if err := manager.Delete("a"); err == nil {
		t.Fatal("double delete accepted")
	}
	// The name is reusable after deletion, and the fresh session is a
	// genuinely new one (its park file was not clobbered by the delete).
	if err := manager.Create(ctx, "a", testCrowd(t, 10, 4, 9).Answers, crowdval.WithSeed(9)); err != nil {
		t.Fatalf("recreate after delete: %v", err)
	}
	if _, err := manager.NextObject(ctx, "a"); err != nil {
		t.Fatalf("recreated session unusable: %v", err)
	}
}

func TestValidateSessionName(t *testing.T) {
	for _, ok := range []string{"a", "session-1", "A.b_c-9", strings.Repeat("x", 128)} {
		if err := ValidateSessionName(ok); err != nil {
			t.Errorf("ValidateSessionName(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"", ".", "..", "-lead", "a/b", "a b", "a\x00b", strings.Repeat("x", 129)} {
		if err := ValidateSessionName(bad); err == nil {
			t.Errorf("ValidateSessionName(%q) accepted", bad)
		}
	}
}

// TestConcurrentClientsBitForBit is the serving-layer determinism contract:
// eight concurrent clients (four writers, four readers) drive four sessions
// through the HTTP server while a one-byte memory budget forces constant
// eviction and resumption, and each session's final snapshot must be
// byte-for-byte identical to the same operation sequence replayed serially on
// a plain Session that never went near the server. Run with -race in CI.
func TestConcurrentClientsBitForBit(t *testing.T) {
	const numSessions = 4
	const steps = 12

	c, _ := newTestServer(t, 1) // 1-byte budget: every settle parks the cold sessions

	type sessionPlan struct {
		name    string
		dataset *crowdval.Dataset
		matrix  [][]int
		chunks  [][]crowdval.Answer
		options SessionConfig
	}
	plans := make([]*sessionPlan, numSessions)
	for i := range plans {
		d := testCrowd(t, 24, 8, int64(100+i))
		// Hold back a slice of answers per session for live ingestion: every
		// third (object+worker) pair, split into three chunks.
		baseMatrix := matrixOf(d.Answers)
		var extras []crowdval.Answer
		for o := 0; o < d.Answers.NumObjects(); o++ {
			for w := 0; w < d.Answers.NumWorkers(); w++ {
				if baseMatrix[o][w] >= 0 && (o+w)%3 == 0 {
					extras = append(extras, crowdval.Answer{Object: o, Worker: w, Label: crowdval.Label(baseMatrix[o][w])})
					baseMatrix[o][w] = -1
				}
			}
		}
		chunks := make([][]crowdval.Answer, 3)
		for j, a := range extras {
			chunks[j%3] = append(chunks[j%3], a)
		}
		plans[i] = &sessionPlan{
			name:    fmt.Sprintf("s%d", i),
			dataset: d,
			matrix:  baseMatrix,
			chunks:  chunks,
			options: createOptions(int64(10 + i)),
		}
	}

	// Create the four sessions through the API.
	for _, p := range plans {
		c.must("POST", "/v1/sessions", CreateSessionRequest{
			Name: p.name, Matrix: p.matrix, NumLabels: 2, Options: p.options,
		}, nil)
	}

	// lowestUnvalidated picks the two lowest-numbered unvalidated objects —
	// the rule both the HTTP writer and the serial replay apply, so the
	// batches agree as long as the sessions are in lockstep.
	lowestUnvalidated := func(validated []int, total int) []int {
		isValidated := make(map[int]bool, len(validated))
		for _, o := range validated {
			isValidated[o] = true
		}
		var picks []int
		for o := 0; o < total && len(picks) < 2; o++ {
			if !isValidated[o] {
				picks = append(picks, o)
			}
		}
		return picks
	}

	var wg sync.WaitGroup
	writerDone := make([]chan struct{}, numSessions)
	errs := make(chan error, numSessions*2)

	for i, p := range plans {
		writerDone[i] = make(chan struct{})
		// Writer: the deterministic operation sequence over HTTP.
		wg.Add(1)
		go func(p *sessionPlan, done chan struct{}) {
			defer wg.Done()
			defer close(done)
			fail := func(format string, args ...any) {
				errs <- fmt.Errorf("writer %s: "+format, append([]any{p.name}, args...)...)
			}
			for step := 0; step < steps; step++ {
				switch {
				case step%4 == 0 && step/4 < len(p.chunks): // ingest a chunk
					answers := make([]AnswerJSON, len(p.chunks[step/4]))
					for j, a := range p.chunks[step/4] {
						answers[j] = AnswerJSON{Object: a.Object, Worker: a.Worker, Label: int(a.Label)}
					}
					if status, e := c.do("POST", "/v1/sessions/"+p.name+"/answers", IngestRequest{Answers: answers}, nil); e != nil {
						fail("ingest step %d: status %d %+v", step, status, e)
						return
					}
				case step%4 == 2: // batch: two lowest unvalidated objects
					var result ResultResponse
					if status, e := c.do("GET", "/v1/sessions/"+p.name+"/result", nil, &result); e != nil {
						fail("result step %d: status %d %+v", step, status, e)
						return
					}
					picks := lowestUnvalidated(result.Validated, result.Objects)
					batch := make([]ValidationJSON, len(picks))
					for j, o := range picks {
						batch[j] = ValidationJSON{Object: o, Label: int(p.dataset.Truth[o])}
					}
					if status, e := c.do("POST", "/v1/sessions/"+p.name+"/validations", SubmitRequest{Validations: batch}, nil); e != nil {
						fail("batch step %d: status %d %+v", step, status, e)
						return
					}
				default: // guided step: next + submit the truth label
					var next NextResponse
					if status, e := c.do("GET", "/v1/sessions/"+p.name+"/next", nil, &next); e != nil {
						fail("next step %d: status %d %+v", step, status, e)
						return
					}
					if status, e := c.do("POST", "/v1/sessions/"+p.name+"/validations", SubmitRequest{
						Validations: []ValidationJSON{{Object: next.Object, Label: int(p.dataset.Truth[next.Object])}},
					}, nil); e != nil {
						fail("submit step %d: status %d %+v", step, status, e)
						return
					}
				}
				if step == steps/2 {
					// Mid-traffic explicit snapshot read, concurrent with the
					// other sessions' churn.
					c.snapshotBytes(p.name)
				}
			}
		}(p, writerDone[i])

		// Reader: hammers result and metrics until the writer finishes.
		wg.Add(1)
		go func(p *sessionPlan, done chan struct{}) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var result ResultResponse
				if status, e := c.do("GET", "/v1/sessions/"+p.name+"/result", nil, &result); e != nil {
					errs <- fmt.Errorf("reader %s: status %d %+v", p.name, status, e)
					return
				}
				if status, e := c.do("GET", "/v1/metrics", nil, &Stats{}); e != nil {
					errs <- fmt.Errorf("reader %s metrics: status %d %+v", p.name, status, e)
					return
				}
			}
		}(p, writerDone[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The eviction machinery must actually have fired mid-traffic, otherwise
	// this test does not cover the park/resume path.
	var stats Stats
	c.must("GET", "/v1/metrics", nil, &stats)
	if stats.Evictions == 0 || stats.Resumes == 0 {
		t.Fatalf("no evict/resume traffic under a 1-byte budget: %+v", stats)
	}

	// Serial replay: the same operation sequences on plain Sessions, no
	// server anywhere. The final snapshots must match byte for byte.
	for _, p := range plans {
		answers, err := crowdval.NewAnswerSetFromMatrix(p.matrix, 2)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := crowdval.NewSession(answers, p.options.libraryOptions()...)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for step := 0; step < steps; step++ {
			switch {
			case step%4 == 0 && step/4 < len(p.chunks):
				if err := ref.AddAnswers(ctx, p.chunks[step/4]); err != nil {
					t.Fatalf("replay %s ingest step %d: %v", p.name, step, err)
				}
			case step%4 == 2:
				validation := ref.Validation()
				var validated []int
				for o := 0; o < ref.NumObjects(); o++ {
					if validation.Validated(o) {
						validated = append(validated, o)
					}
				}
				picks := lowestUnvalidated(validated, ref.NumObjects())
				batch := make([]crowdval.ValidationInput, len(picks))
				for j, o := range picks {
					batch[j] = crowdval.ValidationInput{Object: o, Label: p.dataset.Truth[o]}
				}
				if _, err := ref.SubmitValidations(ctx, batch); err != nil {
					t.Fatalf("replay %s batch step %d: %v", p.name, step, err)
				}
			default:
				object, err := ref.NextObject()
				if err != nil {
					t.Fatalf("replay %s next step %d: %v", p.name, step, err)
				}
				if _, err := ref.SubmitValidation(object, p.dataset.Truth[object]); err != nil {
					t.Fatalf("replay %s submit step %d: %v", p.name, step, err)
				}
			}
		}
		want, err := ref.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		got := c.snapshotBytes(p.name)
		if !bytes.Equal(got, want) {
			t.Fatalf("session %s: server-path snapshot differs from serial replay (%d vs %d bytes) — the serving layer broke determinism", p.name, len(got), len(want))
		}
	}
}
