package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"

	"crowdval"
	"crowdval/internal/cverr"
	"crowdval/internal/wal"
)

// walOp is one scripted session mutation for the durability tests.
type walOp struct {
	answers     []crowdval.Answer // ingest when non-nil
	object      int               // validation otherwise
	label       crowdval.Label
	batch       []crowdval.ValidationInput // transactional batch when non-nil
	budget      *crowdval.CostTracker      // install/replace the monetary budget when non-nil
	expectError bool                       // the op is expected to be rejected (and must re-reject on replay)
}

// walScript builds a deterministic mutation mix against the test crowd:
// ingests from extra workers, single validations, a transactional batch, and
// one invalid op that must fail identically live and on replay.
func walScript(d *crowdval.Dataset, extra *crowdval.Dataset) []walOp {
	ingest := func(worker, from, to int) []crowdval.Answer {
		var answers []crowdval.Answer
		for o := from; o < to; o++ {
			if l := extra.Answers.Answer(o, worker); l >= 0 {
				answers = append(answers, crowdval.Answer{Object: o, Worker: d.Answers.NumWorkers() + worker, Label: l})
			}
		}
		return answers
	}
	return []walOp{
		{answers: ingest(0, 0, 8)},
		{object: 0, label: d.Truth[0]},
		{answers: ingest(1, 4, 12)},
		{object: 1, label: d.Truth[1]},
		{object: 0, label: d.Truth[0], expectError: true}, // ErrAlreadyValidated, live and on replay
		{batch: []crowdval.ValidationInput{{Object: 2, Label: d.Truth[2]}, {Object: 3, Label: d.Truth[3]}}},
		{answers: ingest(2, 0, 16)},
		{object: 4, label: d.Truth[4]},
	}
}

// runScript applies ops through the manager and returns which were
// acknowledged (nil error). WAL failures after an injected fault are
// expected; unexpected errors on a healthy manager fail the test.
func runScript(t testing.TB, m *Manager, name string, ops []walOp, strict bool) []bool {
	t.Helper()
	ctx := context.Background()
	acked := make([]bool, len(ops))
	for i, op := range ops {
		var err error
		switch {
		case op.answers != nil:
			_, err = m.AddAnswers(ctx, name, op.answers)
		case op.batch != nil:
			_, err = m.SubmitBatch(ctx, name, op.batch)
		case op.budget != nil:
			err = m.SetBudget(ctx, name, *op.budget)
		default:
			_, err = m.Submit(ctx, name, op.object, op.label)
		}
		if op.expectError {
			if err == nil {
				t.Fatalf("op %d: expected an application error", i)
			}
			continue
		}
		acked[i] = err == nil
		if strict && err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	return acked
}

// replaySerial rebuilds the expected state library-side: a fresh session plus
// the acknowledged ops applied in order, skipping the deliberately invalid
// ones. The returned snapshot is the ground truth recovery must reproduce.
func replaySerial(t testing.TB, d *crowdval.Dataset, opts []crowdval.Option, ops []walOp, acked []bool) []byte {
	t.Helper()
	ctx := context.Background()
	sess, err := crowdval.NewSession(d.Answers.Clone(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if !acked[i] || op.expectError {
			continue
		}
		switch {
		case op.answers != nil:
			err = sess.AddAnswers(ctx, op.answers)
		case op.batch != nil:
			_, err = sess.SubmitValidations(ctx, op.batch)
		case op.budget != nil:
			sess.SetCostBudget(*op.budget)
		default:
			_, err = sess.SubmitValidationContext(ctx, op.object, op.label)
		}
		if err != nil {
			t.Fatalf("serial replay op %d: %v", i, err)
		}
	}
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// walManagerConfig builds a durable manager config over test temp dirs.
func walManagerConfig(t testing.TB, walDir string, ckptEvery int) ManagerConfig {
	t.Helper()
	return ManagerConfig{
		ParkDir:         t.TempDir(),
		CheckpointEvery: ckptEvery,
	}.WithWAL(walDir, wal.SyncPolicy{Mode: wal.SyncAlways})
}

// sessionOpts are the deterministic options every durability test session
// uses (baseline strategy: no stateful roulette prologue to perturb).
func sessionOpts(extra ...crowdval.Option) []crowdval.Option {
	return append([]crowdval.Option{
		crowdval.WithStrategy(crowdval.StrategyBaseline),
		crowdval.WithSeed(3),
		crowdval.WithParallelism(1),
	}, extra...)
}

func managerSnapshot(t testing.TB, m *Manager, name string) []byte {
	t.Helper()
	snap, err := m.Snapshot(context.Background(), name)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// recoverInto runs recovery on a fresh manager over the same WAL dir and
// returns it with the per-session reports.
func recoverInto(t testing.TB, walDir string, ckptEvery int) (*Manager, []RecoveredSession) {
	t.Helper()
	m, err := NewManager(walManagerConfig(t, walDir, ckptEvery))
	if err != nil {
		t.Fatal(err)
	}
	report, err := m.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return m, report
}

// TestRecoverMatrix walks the recovery shapes: tail-only (no checkpoint yet),
// checkpoint-only (nothing after the last checkpoint), checkpoint+tail, and a
// torn tail appended to each. Recovery must reproduce the exact serial-replay
// snapshot in every cell — the full-path session's bit-for-bit guarantee.
func TestRecoverMatrix(t *testing.T) {
	d := testCrowd(t, 16, 5, 11)
	extra := testCrowd(t, 16, 3, 13)

	cases := []struct {
		name      string
		ckptEvery int
		nOps      int // prefix of the script to run
		tear      int // garbage bytes appended to the log before recovery
		wantCkpt  bool
		wantTail  bool // replayed records beyond the create/checkpoint
	}{
		{name: "tail-only", ckptEvery: -1, nOps: 8, wantTail: true},
		{name: "tail-only-torn", ckptEvery: -1, nOps: 8, tear: 5, wantTail: true},
		{name: "checkpoint-only", ckptEvery: 3, nOps: 3, wantCkpt: true},
		{name: "checkpoint-plus-tail", ckptEvery: 5, nOps: 8, wantCkpt: true, wantTail: true},
		{name: "checkpoint-plus-torn-tail", ckptEvery: 5, nOps: 8, tear: 11, wantCkpt: true, wantTail: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			walDir := t.TempDir()
			m1, err := NewManager(walManagerConfig(t, walDir, tc.ckptEvery))
			if err != nil {
				t.Fatal(err)
			}
			const name = "matrix"
			if err := m1.Create(context.Background(), name, d.Answers.Clone(), sessionOpts()...); err != nil {
				t.Fatal(err)
			}
			ops := walScript(d, extra)[:tc.nOps]
			acked := runScript(t, m1, name, ops, true)
			want := managerSnapshot(t, m1, name)
			// Abandon m1 without shutdown — the crash. SyncAlways means every
			// acknowledged mutation is already on disk.

			if tc.tear > 0 {
				f, err := os.OpenFile(m1.walPath(name), os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write(bytes.Repeat([]byte{0xAB}, tc.tear)); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}

			m2, report := recoverInto(t, walDir, tc.ckptEvery)
			if len(report) != 1 {
				t.Fatalf("recovered %d sessions, want 1", len(report))
			}
			r := report[0]
			if r.Err != nil {
				t.Fatalf("recovery failed: %v", r.Err)
			}
			if r.Name != name {
				t.Fatalf("recovered %q, want %q", r.Name, name)
			}
			if tc.wantCkpt && r.CheckpointLSN == 0 {
				t.Fatal("expected a checkpoint to be resumed")
			}
			if !tc.wantCkpt && r.CheckpointLSN != 0 {
				t.Fatalf("unexpected checkpoint at LSN %d", r.CheckpointLSN)
			}
			if tc.wantTail && r.Replayed == 0 {
				t.Fatal("expected tail records to be replayed")
			}
			if tc.tear > 0 && !r.TornTail {
				t.Fatal("torn tail not reported")
			}
			got := managerSnapshot(t, m2, name)
			if !bytes.Equal(got, want) {
				t.Fatal("recovered snapshot differs from the pre-crash state")
			}
			// The invalid op replays to the same rejection: re-run the full
			// script tail against the recovered session to prove it still
			// behaves like the original (same guard state).
			if tc.nOps == len(walScript(d, extra)) {
				if _, err := m2.Submit(context.Background(), name, 0, d.Truth[0]); !errors.Is(err, cverr.ErrAlreadyValidated) {
					t.Fatalf("replayed session lost its validation guard: %v", err)
				}
			}
			_ = acked
		})
	}
}

// TestRecoverEmptyDir: recovery over a WAL directory with no logs is a no-op.
func TestRecoverEmptyDir(t *testing.T) {
	m, report := recoverInto(t, t.TempDir(), 0)
	if len(report) != 0 {
		t.Fatalf("recovered %d sessions from an empty dir", len(report))
	}
	if got := len(m.Sessions()); got != 0 {
		t.Fatalf("%d sessions after empty recovery", got)
	}
}

// TestRecoverCorruptCheckpointFallsBack damages the newest checkpoint and
// checks recovery resumes the previous generation with a longer replay, still
// landing on the exact pre-crash state.
func TestRecoverCorruptCheckpointFallsBack(t *testing.T) {
	d := testCrowd(t, 16, 5, 17)
	extra := testCrowd(t, 16, 3, 19)
	walDir := t.TempDir()
	m1, err := NewManager(walManagerConfig(t, walDir, 3))
	if err != nil {
		t.Fatal(err)
	}
	const name = "fallback"
	if err := m1.Create(context.Background(), name, d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}
	runScript(t, m1, name, walScript(d, extra), true)
	want := managerSnapshot(t, m1, name)
	if _, err := os.Stat(m1.ckptPrevPath(name)); err != nil {
		t.Fatalf("test needs two checkpoint generations: %v", err)
	}

	// Flip a byte in the newest checkpoint's snapshot region.
	raw, err := os.ReadFile(m1.ckptPath(name))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(m1.ckptPath(name), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, report := recoverInto(t, walDir, 3)
	if len(report) != 1 || report[0].Err != nil {
		t.Fatalf("recovery report: %+v", report)
	}
	if !report[0].UsedFallback {
		t.Fatal("recovery did not report the checkpoint fallback")
	}
	if report[0].Replayed == 0 {
		t.Fatal("fallback recovery should replay a longer tail")
	}
	if got := managerSnapshot(t, m2, name); !bytes.Equal(got, want) {
		t.Fatal("fallback recovery landed on a different state")
	}
}

// TestTruncationKeepsFallbackWindow asserts the rotation invariant directly:
// after any checkpoint, the log's base LSN equals the LSN of the *older*
// surviving checkpoint generation, so the newest checkpoint is never the only
// way to reach any LSN — no record newer than the fallback floor is deleted.
func TestTruncationKeepsFallbackWindow(t *testing.T) {
	d := testCrowd(t, 16, 5, 23)
	extra := testCrowd(t, 16, 3, 29)
	walDir := t.TempDir()
	m, err := NewManager(walManagerConfig(t, walDir, 2))
	if err != nil {
		t.Fatal(err)
	}
	const name = "floor"
	if err := m.Create(context.Background(), name, d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}
	runScript(t, m, name, walScript(d, extra), true)

	prevLSN, _, err := readCheckpointFile(m.ckptPrevPath(name))
	if err != nil {
		t.Fatalf("reading fallback checkpoint: %v", err)
	}
	newestLSN, _, err := readCheckpointFile(m.ckptPath(name))
	if err != nil {
		t.Fatalf("reading newest checkpoint: %v", err)
	}
	f, err := os.Open(m.walPath(name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := wal.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	if rd.BaseLSN() != prevLSN {
		t.Fatalf("log truncated to LSN %d; fallback checkpoint needs %d", rd.BaseLSN(), prevLSN)
	}
	// Every LSN from the fallback floor to at least the newest checkpoint is
	// present and intact.
	last := rd.BaseLSN()
	for {
		_, lsn, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("rotated log has a bad record: %v", err)
		}
		if lsn != last+1 {
			t.Fatalf("rotated log skipped LSN %d -> %d", last, lsn)
		}
		last = lsn
	}
	if last < newestLSN {
		t.Fatalf("rotated log ends at LSN %d, before the newest checkpoint %d", last, newestLSN)
	}
}

// TestRecoverUnrecoverable: both checkpoints damaged and the log header
// destroyed must produce a per-session error, not a panic or a half-session,
// and must not block other sessions from recovering.
func TestRecoverUnrecoverable(t *testing.T) {
	d := testCrowd(t, 16, 5, 31)
	extra := testCrowd(t, 16, 3, 37)
	walDir := t.TempDir()
	m1, err := NewManager(walManagerConfig(t, walDir, -1))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"dead", "alive"} {
		if err := m1.Create(context.Background(), name, d.Answers.Clone(), sessionOpts()...); err != nil {
			t.Fatal(err)
		}
	}
	runScript(t, m1, "alive", walScript(d, extra)[:3], true)
	want := managerSnapshot(t, m1, "alive")

	// Destroy "dead" beyond repair: no checkpoints exist (-1), so zeroing the
	// log header removes every recovery path.
	if err := os.WriteFile(m1.walPath("dead"), make([]byte, 64), 0o644); err != nil {
		t.Fatal(err)
	}

	m2, report := recoverInto(t, walDir, -1)
	if len(report) != 2 {
		t.Fatalf("recovery report has %d entries, want 2", len(report))
	}
	byName := map[string]RecoveredSession{}
	for _, r := range report {
		byName[r.Name] = r
	}
	if byName["dead"].Err == nil {
		t.Fatal("destroyed session recovered without error")
	}
	if !errors.Is(byName["dead"].Err, cverr.ErrBadWAL) {
		t.Fatalf("destroyed session error %v does not wrap ErrBadWAL", byName["dead"].Err)
	}
	if byName["alive"].Err != nil {
		t.Fatalf("healthy session failed to recover: %v", byName["alive"].Err)
	}
	if got := managerSnapshot(t, m2, "alive"); !bytes.Equal(got, want) {
		t.Fatal("healthy session recovered to a different state")
	}
	if _, err := m2.Snapshot(context.Background(), "dead"); !errors.Is(err, cverr.ErrSessionNotFound) {
		t.Fatalf("unrecoverable session is being served: %v", err)
	}
}

// TestDeleteRemovesWALFiles: deleting a session removes its log and both
// checkpoint generations, so a later same-name session starts clean.
func TestDeleteRemovesWALFiles(t *testing.T) {
	d := testCrowd(t, 16, 5, 41)
	extra := testCrowd(t, 16, 3, 43)
	walDir := t.TempDir()
	m, err := NewManager(walManagerConfig(t, walDir, 2))
	if err != nil {
		t.Fatal(err)
	}
	const name = "doomed"
	if err := m.Create(context.Background(), name, d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}
	runScript(t, m, name, walScript(d, extra), true)
	if err := m.Delete(name); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{m.walPath(name), m.ckptPath(name), m.ckptPrevPath(name)} {
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s survived the delete: %v", path, err)
		}
	}
	if _, report := recoverInto(t, walDir, 2); len(report) != 0 {
		t.Fatalf("deleted session left %d recoverable logs", len(report))
	}
}

// TestIngestBackpressure: with a queue bound of 1 and the session write lock
// held, the second queued ingest is shed with ErrOverloaded (HTTP 429 via
// statusFor) and counted in the stats.
func TestIngestBackpressure(t *testing.T) {
	d := testCrowd(t, 16, 5, 47)
	m, err := NewManager(ManagerConfig{ParkDir: t.TempDir(), MaxQueuedIngest: 1})
	if err != nil {
		t.Fatal(err)
	}
	const name = "busy"
	if err := m.Create(context.Background(), name, d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	e := m.sessions[name]
	m.mu.Unlock()

	// Hold the write lock so queued tickets cannot drain.
	e.mu.Lock()
	first := make(chan error, 1)
	go func() {
		_, err := m.AddAnswers(context.Background(), name,
			[]crowdval.Answer{{Object: 0, Worker: 5, Label: 1}})
		first <- err
	}()
	waitFor(t, func() bool {
		e.ingestMu.Lock()
		defer e.ingestMu.Unlock()
		return len(e.ingestQueue) == 1
	})
	_, err = m.AddAnswers(context.Background(), name,
		[]crowdval.Answer{{Object: 1, Worker: 5, Label: 0}})
	if !errors.Is(err, cverr.ErrOverloaded) {
		t.Fatalf("second ingest: %v, want ErrOverloaded", err)
	}
	if status := statusFor(err); status != http.StatusTooManyRequests {
		t.Fatalf("ErrOverloaded maps to %d, want 429", status)
	}
	e.mu.Unlock()
	if err := <-first; err != nil {
		t.Fatalf("first ingest: %v", err)
	}
	if got := m.Stats().ShedIngests; got != 1 {
		t.Fatalf("ShedIngests = %d, want 1", got)
	}
}

// TestPrometheusEndpoint scrapes GET /metrics and checks the text exposition
// shape and a few counters that must reflect the traffic just sent.
func TestPrometheusEndpoint(t *testing.T) {
	d := testCrowd(t, 16, 5, 53)
	walDir := t.TempDir()
	m, err := NewManager(walManagerConfig(t, walDir, -1))
	if err != nil {
		t.Fatal(err)
	}
	base := serveManager(t, m)
	if err := m.Create(context.Background(), "prom", d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), "prom", 0, d.Truth[0]); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE crowdval_sessions gauge",
		"crowdval_sessions 1",
		"# TYPE crowdval_validations_total counter",
		"crowdval_validations_total 1",
		"# TYPE crowdval_wal_records_total counter",
		"# TYPE crowdval_wal_fsyncs_total counter",
		"# TYPE crowdval_checkpoints_total counter",
		"# TYPE crowdval_shed_ingests_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("GET /metrics missing %q in:\n%s", want, body)
		}
	}
	// The WAL logged the create record and the validation.
	stats := m.Stats()
	if stats.WALRecords < 2 {
		t.Fatalf("WALRecords = %d, want >= 2", stats.WALRecords)
	}
	if !strings.Contains(body, fmt.Sprintf("crowdval_wal_records_total %d", stats.WALRecords)) {
		t.Fatalf("GET /metrics does not carry the WAL record counter:\n%s", body)
	}
}

// TestLoggedMutationIgnoresRequestCancellation pins the acknowledge-after-log
// contract: once a mutation's record is appended to the WAL it will be
// replayed after a crash, so the live apply must run to completion even when
// the request's context is cancelled mid-flight — a cancellation rollback of
// the live state would diverge from recovery. Checked on both logged write
// paths (updateLogged, and the ingest drain's own-ticket path), and recovery
// must land bit-for-bit on the live state.
func TestLoggedMutationIgnoresRequestCancellation(t *testing.T) {
	d := testCrowd(t, 16, 5, 67)
	walDir := t.TempDir()
	m1, err := NewManager(walManagerConfig(t, walDir, -1))
	if err != nil {
		t.Fatal(err)
	}
	const name = "cancelled"
	if err := m1.Create(context.Background(), name, d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}

	// updateLogged path: the client vanishes after the record is logged,
	// while fn is applying. fn must have been handed a cancellation-free
	// context and the mutation must still succeed.
	ctx, cancel := context.WithCancel(context.Background())
	err = m1.updateLogged(ctx, name, submitRecord(0, d.Truth[0]), func(applyCtx context.Context, s *crowdval.Session) error {
		cancel()
		if applyCtx.Err() != nil {
			t.Errorf("logged apply saw the request cancellation: %v", applyCtx.Err())
		}
		_, err := s.SubmitValidationContext(applyCtx, 0, d.Truth[0])
		return err
	})
	if err != nil {
		t.Fatalf("logged submit rolled back on cancellation: %v", err)
	}

	// Ingest drain path: park the ticket behind a held write lock, cancel the
	// request while it is queued, then let it drain. The logged batch must
	// apply and be acknowledged.
	m1.mu.Lock()
	e := m1.sessions[name]
	m1.mu.Unlock()
	ictx, icancel := context.WithCancel(context.Background())
	defer icancel()
	e.mu.Lock()
	done := make(chan error, 1)
	go func() {
		_, err := m1.AddAnswers(ictx, name, []crowdval.Answer{{Object: 1, Worker: 5, Label: 1}})
		done <- err
	}()
	waitFor(t, func() bool {
		e.ingestMu.Lock()
		defer e.ingestMu.Unlock()
		return len(e.ingestQueue) == 1
	})
	icancel()
	e.mu.Unlock()
	if err := <-done; err != nil {
		t.Fatalf("logged ingest rolled back on cancellation: %v", err)
	}

	want := managerSnapshot(t, m1, name)
	m2, report := recoverInto(t, walDir, -1)
	if len(report) != 1 || report[0].Err != nil {
		t.Fatalf("recovery report: %+v", report)
	}
	if got := managerSnapshot(t, m2, name); !bytes.Equal(got, want) {
		t.Fatal("recovered state diverged from the live state after cancelled requests")
	}
}

// TestRotationFailsStopOnCorruptLog pins the rotation integrity check: every
// record through the checkpoint's LSN was fsynced before rotation starts, so
// a record that cannot be read back is corruption, not a torn tail — the
// rotation must fail the session stop instead of installing a shortened log
// with an implicit-LSN gap. A restart then heals through the (intact) newest
// checkpoint.
func TestRotationFailsStopOnCorruptLog(t *testing.T) {
	d := testCrowd(t, 16, 5, 71)
	extra := testCrowd(t, 16, 3, 73)
	walDir := t.TempDir()
	m1, err := NewManager(walManagerConfig(t, walDir, 5))
	if err != nil {
		t.Fatal(err)
	}
	const name = "midrot"
	if err := m1.Create(context.Background(), name, d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}
	ops := walScript(d, extra)
	runScript(t, m1, name, ops[:3], true)

	// Flip a byte inside the create record's payload — a durable record far
	// below the LSN the next checkpoint will cover.
	f, err := os.OpenFile(m1.walPath(name), os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xAB}, 16+8+5); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Ops 4 and 5 log fine; the 5th trips the checkpoint whose rotation hits
	// the corrupt record and fails the session stop.
	runScript(t, m1, name, ops[3:5], true)
	if got := m1.Stats().CheckpointFailures; got != 1 {
		t.Fatalf("CheckpointFailures = %d, want 1", got)
	}
	if _, err := m1.Submit(context.Background(), name, 10, d.Truth[10]); err == nil {
		t.Fatal("mutation accepted after the log failed stop")
	} else if !errors.Is(err, cverr.ErrBadWAL) {
		t.Fatalf("fail-stop error %v does not wrap ErrBadWAL", err)
	}
	want := managerSnapshot(t, m1, name) // state after the acknowledged ops

	// The rotation installed its checkpoint before failing, so a restart
	// recovers everything — including the two ops logged after the corruption.
	m2, report := recoverInto(t, walDir, 5)
	if len(report) != 1 || report[0].Err != nil {
		t.Fatalf("recovery report: %+v", report)
	}
	if got := managerSnapshot(t, m2, name); !bytes.Equal(got, want) {
		t.Fatal("post-fail-stop recovery diverged from the live state")
	}
}

// TestCloseFlushesBufferedRecords pins graceful shutdown under SyncOff: the
// acknowledged records sitting in the appender's buffer must reach the disk
// through Manager.Close, so a clean restart loses nothing — the
// buffered-records risk window is for crashes only.
func TestCloseFlushesBufferedRecords(t *testing.T) {
	d := testCrowd(t, 16, 5, 79)
	extra := testCrowd(t, 16, 3, 83)
	walDir := t.TempDir()
	cfg := walManagerConfig(t, walDir, -1)
	cfg.WALSync = wal.SyncPolicy{Mode: wal.SyncOff}
	m1, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const name = "graceful"
	if err := m1.Create(context.Background(), name, d.Answers.Clone(), sessionOpts()...); err != nil {
		t.Fatal(err)
	}
	runScript(t, m1, name, walScript(d, extra), true)
	want := managerSnapshot(t, m1, name)
	if err := m1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m1.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := m1.Submit(context.Background(), name, 10, d.Truth[10]); err == nil {
		t.Fatal("mutation accepted after Close")
	}

	m2, report := recoverInto(t, walDir, -1)
	if len(report) != 1 || report[0].Err != nil {
		t.Fatalf("recovery report: %+v", report)
	}
	if report[0].TornTail {
		t.Fatal("gracefully closed log reported a torn tail")
	}
	if got := managerSnapshot(t, m2, name); !bytes.Equal(got, want) {
		t.Fatal("graceful shutdown lost buffered records")
	}
}

// TestConcurrentMetricsScrape hammers /metrics while 8 clients ingest and
// validate through eviction/resume churn (tiny memory budget) on a durable
// manager — the unsynchronized-stats audit. Run with -race in CI: the scrape
// path must be data-race-free against in-flight WAL appends and parking.
func TestConcurrentMetricsScrape(t *testing.T) {
	d := testCrowd(t, 16, 5, 59)
	extra := testCrowd(t, 16, 3, 61)
	cfg := walManagerConfig(t, t.TempDir(), 4)
	cfg.MemoryBudget = 1 // every settle picks eviction victims: park/resume churn
	cfg.WALSync = wal.SyncPolicy{Mode: wal.SyncInterval, Interval: 4}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := serveManager(t, m)

	const clients = 8
	for i := 0; i < clients; i++ {
		name := fmt.Sprintf("scrape-%d", i)
		if err := m.Create(context.Background(), name, d.Answers.Clone(), sessionOpts(crowdval.WithDeltaIngest())...); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(base + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			_ = m.Stats()
		}
	}()

	var wg sync.WaitGroup
	ops := walScript(d, extra)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("scrape-%d", i)
			runScript(t, m, name, ops, false)
		}(i)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	stats := m.Stats()
	if stats.WALRecords == 0 || stats.WALSyncs == 0 {
		t.Fatalf("WAL counters did not move: %+v", stats)
	}
	if stats.Sessions != clients {
		t.Fatalf("Sessions = %d, want %d", stats.Sessions, clients)
	}
}
