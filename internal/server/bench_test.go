package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"crowdval"
)

// BenchmarkServerConcurrentIngest measures the serving-path ingestion
// throughput on the headline workload: sessions over 50 000 objects × 500
// workers at ~1% density (the BENCHMARKS.md shape), receiving batches of 100
// new crowd answers through the HTTP API. Each ingest runs the warm-started
// i-EM fold-in, so this benchmarks the full serve → manager → session →
// aggregation stack, with concurrent clients spread over four sessions.
func BenchmarkServerConcurrentIngest(b *testing.B) {
	benchmarkIngest(b)
}

// BenchmarkDeltaIngest is BenchmarkServerConcurrentIngest with the
// delta-incremental path enabled on every session: identical workload,
// identical request stream, but each 100-answer batch re-aggregates only its
// dirty frontier before the full-sweep settle phase (plus server-side
// coalescing merging batches that pile up behind a slow aggregation). The
// answers/sec ratio between the two benchmarks is the delta path's headline
// number tracked in BENCHMARKS.md.
func BenchmarkDeltaIngest(b *testing.B) {
	benchmarkIngest(b, crowdval.WithDeltaIngest())
}

func benchmarkIngest(b *testing.B, extraOpts ...crowdval.Option) {
	const (
		numSessions = 4
		objects     = 50000
		workers     = 500
		batchSize   = 100
	)
	d, err := crowdval.GenerateCrowd(crowdval.CrowdConfig{
		NumObjects: objects, NumWorkers: workers, NumLabels: 2,
		AnswersPerObject: 5, // ≈1% density
		NormalAccuracy:   0.7,
		Mix:              crowdval.WorkerMix{Normal: 0.75, RandomSpammer: 0.25},
		Seed:             1,
	})
	if err != nil {
		b.Fatal(err)
	}
	manager, err := NewManager(ManagerConfig{ParkDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(New(manager))
	defer srv.Close()

	for i := 0; i < numSessions; i++ {
		// Each session ingests into its answer set in place, so every one
		// gets its own copy of the base answers.
		opts := append([]crowdval.Option{
			crowdval.WithStrategy(crowdval.StrategyBaseline), crowdval.WithSeed(int64(i)),
		}, extraOpts...)
		if err := manager.Create(context.Background(), fmt.Sprintf("bench-%d", i), d.Answers.Clone(), opts...); err != nil {
			b.Fatal(err)
		}
	}

	// Pre-build distinct ingest bodies so request construction is not what
	// is measured; answers are uniformly random (overwrites are fine).
	rng := rand.New(rand.NewSource(7))
	bodies := make([][]byte, 64)
	for i := range bodies {
		req := IngestRequest{Answers: make([]AnswerJSON, batchSize)}
		for j := range req.Answers {
			req.Answers[j] = AnswerJSON{
				Object: rng.Intn(objects),
				Worker: rng.Intn(workers),
				Label:  rng.Intn(2),
			}
		}
		raw, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = raw
	}

	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := srv.Client()
		for pb.Next() {
			i := next.Add(1)
			session := fmt.Sprintf("bench-%d", i%numSessions)
			body := bodies[i%int64(len(bodies))]
			resp, err := client.Post(srv.URL+"/v1/sessions/"+session+"/answers",
				"application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("ingest status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	})
	b.StopTimer()
	stats := manager.Stats()
	b.ReportMetric(float64(stats.IngestedAnswers)/b.Elapsed().Seconds(), "answers/sec")
}

// BenchmarkServerNext measures guidance selection through the serving stack
// on the headline 50 000 × 500 @ ~1% workload: concurrent clients GET
// /next?k=5 against four delta-scored sessions (uncertainty strategy,
// candidate limit 64 — the same candidate set BenchmarkNextObject scores).
// Selections are served under the per-session read lock, so concurrent next
// requests and result views proceed in parallel; the exact full-EM scorer on
// this shape costs hundreds of warm-EM runs per request and is benchmarked
// library-side as BenchmarkNextObject/50000x500/exact-full-em.
//
// Two variants, guarded as a pair by scripts/benchguard (-pairs nextserve):
//
//   - maintained — the default serving configuration: the scoring index is
//     built once, patched in place across state changes, and repeated
//     selections of an unchanged state are served from the memoized ranking.
//   - rebuild — WithoutSelectionCache: every request rescans the candidate
//     set against a freshly reconciled index, the pre-maintained-view cost.
func BenchmarkServerNext(b *testing.B) {
	b.Run("maintained", func(b *testing.B) { benchmarkServerNext(b) })
	b.Run("rebuild", func(b *testing.B) { benchmarkServerNext(b, crowdval.WithoutSelectionCache()) })
}

// BenchmarkGlobalNext measures the marketplace read path: GET /v1/next?k=10
// ranks the next expert validations across every resident session — each
// budgeted with its own θ, scored under its per-session read lock from the
// maintained view, normalized to gain per unit cost and merged to the global
// top-k. The sweep over the resident-session count (1, 8, 64) shows how the
// fan-out scales; sessions are warm (index built, rankings memoized), so the
// steady-state cost is k-candidate reads plus the merge, per session.
//
// The 64-sessions/BenchmarkServerNext-maintained ratio is guarded by
// scripts/benchguard (-pairs globalnext): a global top-10 over 64 warm
// sessions must stay within an order of magnitude of one single-session
// served selection, the contract that makes the marketplace endpoint
// pollable at interactive rates.
func BenchmarkGlobalNext(b *testing.B) {
	// Named "N-sessions" rather than "sessions-N": benchguard strips a
	// trailing numeric dash suffix as the GOMAXPROCS marker, so a numeric
	// tail would make the 64-session variant unaddressable as a pair.
	for _, sessions := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("%d-sessions", sessions), func(b *testing.B) {
			benchmarkGlobalNext(b, sessions)
		})
	}
}

func benchmarkGlobalNext(b *testing.B, numSessions int) {
	const (
		objects = 2000
		workers = 100
	)
	d, err := crowdval.GenerateCrowd(crowdval.CrowdConfig{
		NumObjects: objects, NumWorkers: workers, NumLabels: 2,
		AnswersPerObject: 5,
		NormalAccuracy:   0.7,
		Mix:              crowdval.WorkerMix{Normal: 0.75, RandomSpammer: 0.25},
		Seed:             1,
	})
	if err != nil {
		b.Fatal(err)
	}
	manager, err := NewManager(ManagerConfig{ParkDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(New(manager))
	defer srv.Close()

	for i := 0; i < numSessions; i++ {
		opts := []crowdval.Option{
			crowdval.WithStrategy(crowdval.StrategyUncertainty),
			crowdval.WithCandidateLimit(64),
			crowdval.WithDeltaScoring(),
			crowdval.WithSeed(int64(i)),
			crowdval.WithCostBudget(crowdval.CostTracker{Theta: 10 + float64(i), Budget: 1e6}),
		}
		if err := manager.Create(context.Background(), fmt.Sprintf("mkt-%d", i), d.Answers.Clone(), opts...); err != nil {
			b.Fatal(err)
		}
	}

	// Warm every session's maintained view, then the global endpoint once.
	for i := 0; i < numSessions; i++ {
		resp, err := srv.Client().Get(srv.URL + fmt.Sprintf("/v1/sessions/mkt-%d/next?k=10", i))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("warmup status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := srv.Client()
		for pb.Next() {
			resp, err := client.Get(srv.URL + "/v1/next?k=10")
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("global next status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	})
	b.StopTimer()
	stats := manager.Stats()
	b.ReportMetric(float64(stats.GlobalSelections)/b.Elapsed().Seconds(), "rankings/sec")
}

func benchmarkServerNext(b *testing.B, extraOpts ...crowdval.Option) {
	const (
		numSessions = 4
		objects     = 50000
		workers     = 500
	)
	d, err := crowdval.GenerateCrowd(crowdval.CrowdConfig{
		NumObjects: objects, NumWorkers: workers, NumLabels: 2,
		AnswersPerObject: 5, // ≈1% density
		NormalAccuracy:   0.7,
		Mix:              crowdval.WorkerMix{Normal: 0.75, RandomSpammer: 0.25},
		Seed:             1,
	})
	if err != nil {
		b.Fatal(err)
	}
	manager, err := NewManager(ManagerConfig{ParkDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(New(manager))
	defer srv.Close()

	for i := 0; i < numSessions; i++ {
		opts := append([]crowdval.Option{
			crowdval.WithStrategy(crowdval.StrategyUncertainty),
			crowdval.WithCandidateLimit(64),
			crowdval.WithDeltaScoring(),
			crowdval.WithSeed(int64(i)),
		}, extraOpts...)
		if err := manager.Create(context.Background(), fmt.Sprintf("next-%d", i), d.Answers.Clone(), opts...); err != nil {
			b.Fatal(err)
		}
	}

	// Warm every session once before the timer: the first selection after a
	// state change legitimately builds the scoring index in both variants,
	// and this benchmark measures the steady state between state changes.
	for i := 0; i < numSessions; i++ {
		resp, err := srv.Client().Get(srv.URL + fmt.Sprintf("/v1/sessions/next-%d/next?k=5", i))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("warmup status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := srv.Client()
		for pb.Next() {
			i := next.Add(1)
			session := fmt.Sprintf("next-%d", i%numSessions)
			resp, err := client.Get(srv.URL + "/v1/sessions/" + session + "/next?k=5")
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("next status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	})
	b.StopTimer()
	stats := manager.Stats()
	b.ReportMetric(float64(stats.Selections)/b.Elapsed().Seconds(), "selections/sec")
}
