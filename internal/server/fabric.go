package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"crowdval"
	"crowdval/internal/cverr"
	"crowdval/internal/wal"
)

// This file is the manager's side of the cluster fabric (see
// internal/cluster): live session handoff between nodes, adoption of a
// transferred session with LSN continuity, and the replica apply path a
// WAL-tailing follower drives. The manager stays cluster-agnostic — it moves
// sessions and applies records; which node owns what is the cluster layer's
// business.

// Has reports whether a session of that name is managed, without touching
// LRU order — an existence probe, not a use.
func (m *Manager) Has(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.sessions[name]
	return ok
}

// SessionLSN returns the LSN of the last mutation applied to the named
// session: the log position for a session with a WAL, the streamed position
// for a WAL-less replica, zero for a plain standalone session. Appends run
// under the entry's write lock, so the read lock makes the sample race-free.
func (m *Manager) SessionLSN(name string) (uint64, error) {
	e, err := m.lookup(name)
	if err != nil {
		return 0, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.deleted {
		return 0, fmt.Errorf("%w: %q", cverr.ErrSessionNotFound, name)
	}
	if e.log != nil {
		return e.log.app.LSN(), nil
	}
	return e.replicaLSN, nil
}

// SessionWALPath returns the path of the session's live log file — what a
// follower subscription tails. It fails when the manager runs without a WAL
// or does not manage the session.
func (m *Manager) SessionWALPath(name string) (string, error) {
	if m.walDir == "" {
		return "", fmt.Errorf("server: session %q has no WAL to tail (manager runs without one)", name)
	}
	if !m.Has(name) {
		return "", fmt.Errorf("%w: %q", cverr.ErrSessionNotFound, name)
	}
	return m.walPath(name), nil
}

// SnapshotWithLSN returns the session's encoded snapshot together with the
// LSN of the last mutation it covers, taken atomically under the session's
// write lock — the reset frame a follower subscription starts from. The log
// is flushed (not fsynced) first, so a tailer opened right after can read
// every record up to the returned LSN.
func (m *Manager) SnapshotWithLSN(ctx context.Context, name string) ([]byte, uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	e, err := m.lookup(name)
	if err != nil {
		return nil, 0, err
	}
	var snap []byte
	var lsn uint64
	err = m.exclusive(e, name, func(s *crowdval.Session) error {
		var serr error
		snap, serr = s.Snapshot()
		if serr != nil {
			return serr
		}
		if e.log != nil {
			if e.log.state != walHealthy {
				return e.log.unavailable(name)
			}
			if ferr := e.log.app.Flush(); ferr != nil {
				m.degradeWAL(e.log, ferr)
				return fmt.Errorf("server: flushing WAL of session %q: %w", name, ferr)
			}
			lsn = e.log.app.LSN()
		} else {
			lsn = e.replicaLSN
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return snap, lsn, nil
}

// HandoffSession migrates the named session to another node: under the
// session's write lock — so no mutation can slip in behind the transferred
// state — the WAL is fsynced, the final snapshot taken, and send delivers
// snapshot + LSN to the target. Only after send returns nil is the local copy
// retired (session, WAL, checkpoints, park file); on any failure the session
// stays exactly where it was and keeps serving. The crash window between the
// target's ack and the local retirement can leave both nodes with a copy —
// the router resolves that by ownership, never by merging.
func (m *Manager) HandoffSession(ctx context.Context, name string, send func(snapshot []byte, lsn uint64) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e, err := m.lookup(name)
	if err != nil {
		return err
	}
	e.mu.Lock()
	if e.deleted {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", cverr.ErrSessionNotFound, name)
	}
	if e.sess == nil {
		if err := m.unpark(e); err != nil {
			e.mu.Unlock()
			return err
		}
	}
	fail := func(err error) error {
		victims := m.settle(e)
		e.mu.Unlock()
		m.parkAll(victims)
		return err
	}
	var lsn uint64
	if e.log != nil {
		if e.log.state != walHealthy {
			return fail(fmt.Errorf("server: not handing off session %q: %w", name, e.log.unavailable(name)))
		}
		// Acknowledged mutations must be durable locally before the transfer:
		// if the send dies halfway, this node is still the owner of record and
		// must be able to crash-recover everything it acked.
		if err := e.log.app.Sync(); err != nil {
			m.degradeWAL(e.log, err)
			return fail(fmt.Errorf("server: syncing WAL of session %q for handoff: %w", name, err))
		}
		m.foldWALMetrics(e.log)
		lsn = e.log.app.LSN()
	} else {
		lsn = e.replicaLSN
	}
	snap, err := e.sess.Snapshot()
	if err != nil {
		return fail(fmt.Errorf("server: snapshotting session %q for handoff: %w", name, err))
	}
	if err := send(snap, lsn); err != nil {
		return fail(fmt.Errorf("server: handing off session %q: %w", name, err))
	}

	// The target owns the session now; retire the local copy the way Delete
	// does, under the same name-stays-reserved-until-done discipline.
	e.deleted = true
	e.sess = nil
	if e.log != nil {
		e.log.close()
		e.log = nil
	}
	m.removeWALFiles(name)
	_ = os.Remove(m.parkPath(name))
	e.mu.Unlock()

	m.mu.Lock()
	if cur, ok := m.sessions[name]; ok && cur == e {
		delete(m.sessions, name)
		m.lru.Remove(e.elem)
	}
	m.resident -= e.bytes
	e.bytes = 0
	e.parkedAccounted = false
	m.mu.Unlock()
	return nil
}

// CreateFromHandoff installs a session transferred from another node: the
// snapshot resumes, and — when this manager has a WAL — its durability state
// is adopted at the donor's LSN (a checkpoint carrying the snapshot plus an
// empty log based there), so the session's mutation numbering continues
// seamlessly across nodes and recovery works the same as for a home-grown
// session.
func (m *Manager) CreateFromHandoff(ctx context.Context, name string, snapshot []byte, lsn uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := ValidateSessionName(name); err != nil {
		return err
	}
	e := &entry{name: name}
	e.mu.Lock()
	m.mu.Lock()
	if _, exists := m.sessions[name]; exists {
		m.mu.Unlock()
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", cverr.ErrSessionExists, name)
	}
	m.sessions[name] = e
	e.elem = m.lru.PushFront(e)
	m.mu.Unlock()

	sess, err := crowdval.ResumeSession(snapshot)
	var w *sessionWAL
	if err == nil && m.walDir != "" {
		w, err = m.adoptWAL(name, snapshot, lsn)
	}
	if err != nil {
		e.deleted = true
		e.mu.Unlock()
		m.mu.Lock()
		delete(m.sessions, name)
		m.lru.Remove(e.elem)
		m.mu.Unlock()
		return err
	}
	e.sess = sess
	e.log = w
	e.replicaLSN = lsn
	victims := m.settle(e)
	e.mu.Unlock()
	m.parkAll(victims)
	return nil
}

// adoptWAL starts the durability state of a session adopted at lsn: the
// transferred snapshot becomes the newest checkpoint covering lsn, and a
// fresh empty log is based there — exactly the state a home-grown session is
// in right after a checkpoint rotation, so every later code path (appends,
// rotation, recovery) applies unchanged.
func (m *Manager) adoptWAL(name string, snapshot []byte, lsn uint64) (*sessionWAL, error) {
	ckpt := m.ckptPath(name)
	os.Remove(m.ckptPrevPath(name))
	tmp := ckpt + ".tmp"
	if err := m.writeFileSynced(tmp, func(f io.Writer) error {
		return wal.WriteCheckpoint(f, lsn, snapshot)
	}); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("server: writing adopted checkpoint of session %q: %w", name, err)
	}
	if err := os.Rename(tmp, ckpt); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("server: installing adopted checkpoint of session %q: %w", name, err)
	}
	path := m.walPath(name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		os.Remove(ckpt)
		return nil, fmt.Errorf("server: creating adopted WAL of session %q: %w", name, err)
	}
	app, err := wal.NewAppender(m.wrapWAL(name, f), lsn, m.walSync)
	if err != nil {
		f.Close()
		os.Remove(path)
		os.Remove(ckpt)
		return nil, fmt.Errorf("server: creating adopted WAL of session %q: %w", name, err)
	}
	w := &sessionWAL{f: f, app: app, lastCkptLSN: lsn}
	m.foldWALMetrics(w)
	return w, nil
}

// ReplicaReset (re)starts following a session: any existing local copy is
// discarded and the leader's snapshot is installed at its LSN. It is the
// apply side of a subscription's reset frame — after it, ReplicaApply
// consumes the stream from lsn+1.
func (m *Manager) ReplicaReset(ctx context.Context, name string, snapshot []byte, lsn uint64) error {
	if err := m.Delete(name); err != nil && !errors.Is(err, cverr.ErrSessionNotFound) {
		return err
	}
	return m.CreateFromHandoff(ctx, name, snapshot, lsn)
}

// ReplicaApply applies one streamed log record to a followed session through
// the same log-before-apply discipline the leader used, enforcing gap-free
// LSN continuity: a duplicate (lsn at or below the replica's position, the
// signature of a reconnect) is skipped, a gap is rejected with ErrBadWAL so
// the follower falls back to a fresh reset. Per-record application errors are
// tolerated exactly like crash recovery tolerates them — the library rejects
// invalid mutations without mutating, so a record that failed on the leader
// re-fails here deterministically.
func (m *Manager) ReplicaApply(ctx context.Context, name string, lsn uint64, rec wal.Record) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if rec.Type == wal.RecCreate {
		return fmt.Errorf("server: replica %q: create record in the middle of a stream: %w", name, cverr.ErrBadWAL)
	}
	e, err := m.lookup(name)
	if err != nil {
		return err
	}
	return m.exclusive(e, name, func(s *crowdval.Session) error {
		cur := e.replicaLSN
		if e.log != nil {
			cur = e.log.app.LSN()
		}
		if lsn <= cur {
			return nil
		}
		if lsn != cur+1 {
			return fmt.Errorf("server: replica %q: record LSN %d leaves a gap after %d: %w", name, lsn, cur, cverr.ErrBadWAL)
		}
		if err := m.logMutation(e, rec); err != nil {
			return err
		}
		applyCtx := ctx
		if e.log != nil {
			applyCtx = context.WithoutCancel(ctx)
		}
		aerr := replayRecord(applyCtx, s, rec)
		e.replicaLSN = lsn
		m.maybeCheckpoint(e)
		if aerr != nil && (errors.Is(aerr, context.Canceled) || errors.Is(aerr, context.DeadlineExceeded)) {
			return aerr
		}
		return nil
	})
}
