package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"crowdval"
)

// TestCorruptedParkFileErrBadSnapshotOverHTTP: a parked session whose park
// file was damaged on disk must surface ErrBadSnapshot — mapped to a 400
// with the stable code — when the next touch tries to resume it, not a 500
// or a panic.
func TestCorruptedParkFileErrBadSnapshotOverHTTP(t *testing.T) {
	parkDir := t.TempDir()
	manager, err := NewManager(ManagerConfig{MemoryBudget: 1, ParkDir: parkDir})
	if err != nil {
		t.Fatal(err)
	}
	c := &client{t: t, base: serveManager(t, manager), http: http.DefaultClient}

	d := testCrowd(t, 16, 5, 2)
	ctx := context.Background()
	if err := manager.Create(ctx, "victim", d.Answers.Clone(), crowdval.WithSeed(1)); err != nil {
		t.Fatal(err)
	}
	// A second session over the 1-byte budget parks the first.
	if err := manager.Create(ctx, "filler", d.Answers.Clone(), crowdval.WithSeed(2)); err != nil {
		t.Fatal(err)
	}
	parkPath := filepath.Join(parkDir, "victim.cvsn")
	waitFor(t, func() bool { _, err := os.Stat(parkPath); return err == nil })

	if err := os.WriteFile(parkPath, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	status, errResp := c.do("GET", "/v1/sessions/victim/result", nil, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("corrupted park file produced status %d (%+v), want 400", status, errResp)
	}
	if errResp == nil || errResp.Code != "ErrBadSnapshot" {
		t.Fatalf("error code = %+v, want ErrBadSnapshot", errResp)
	}

	// The session is wedged but the manager is not: it still lists, and
	// deleting it cleans up.
	if status, errResp := c.do("DELETE", "/v1/sessions/victim", nil, nil); errResp != nil {
		t.Fatalf("deleting the wedged session: status %d %+v", status, errResp)
	}
	if _, err := os.Stat(parkPath); !os.IsNotExist(err) {
		t.Fatalf("park file survived the delete: %v", err)
	}
}

// serveManager exposes an existing manager over a test HTTP server (unlike
// newTestServer, which builds its own manager).
func serveManager(t testing.TB, m *Manager) string {
	t.Helper()
	srv := httptest.NewServer(New(m))
	t.Cleanup(srv.Close)
	return srv.URL
}

// waitFor polls a condition with a deadline — used where the asserted state
// is produced by the post-operation parking step, which runs after the
// triggering call returns.
func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within the deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEvictionRacesDelete hammers the window between a session being picked
// as an eviction victim and a concurrent Delete: whatever interleaving the
// scheduler produces, the deleted session must end up gone, its park file
// must not survive, and the manager's accounting must stay consistent. Run
// with -race in CI.
func TestEvictionRacesDelete(t *testing.T) {
	parkDir := t.TempDir()
	manager, err := NewManager(ManagerConfig{MemoryBudget: 1, ParkDir: parkDir})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	d := testCrowd(t, 12, 4, 3)
	if err := manager.Create(ctx, "hot", d.Answers.Clone(), crowdval.WithSeed(1)); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("victim-%d", i)
		if err := manager.Create(ctx, name, d.Answers.Clone(), crowdval.WithSeed(int64(10+i))); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// Touching the hot session re-accounts it and selects the cold
			// victim for parking.
			if _, err := manager.AddAnswers(ctx, "hot", []crowdval.Answer{{Object: i % 12, Worker: 1, Label: 1}}); err != nil {
				t.Error(err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := manager.Delete(name); err != nil {
				t.Error(err)
			}
		}()
		wg.Wait()

		if err := manager.Delete(name); !errors.Is(err, crowdval.ErrSessionNotFound) {
			t.Fatalf("iteration %d: second delete = %v, want ErrSessionNotFound", i, err)
		}
		if _, err := os.Stat(filepath.Join(parkDir, name+".cvsn")); !os.IsNotExist(err) {
			t.Fatalf("iteration %d: park file of the deleted session survived", i)
		}
	}

	stats := manager.Stats()
	if stats.Sessions != 1 {
		t.Fatalf("sessions = %d, want only the hot one; stats %+v", stats.Sessions, stats)
	}
	if stats.Parked < 0 || stats.Resident < 0 || stats.Resident+stats.Parked != stats.Sessions {
		t.Fatalf("inconsistent accounting after the race: %+v", stats)
	}
}

// TestMetricsReportCoalescedIngest drives the coalescing path
// deterministically: a blocking read holds the session lock while several
// ingest requests queue up, so releasing the lock makes exactly one merged
// batch. The counters must attribute one executed batch, the rest coalesced,
// and the metrics endpoint must expose them over HTTP.
func TestMetricsReportCoalescedIngest(t *testing.T) {
	c, manager := newTestServer(t, 0)
	ctx := context.Background()
	d := testCrowd(t, 20, 6, 5)
	if err := manager.Create(ctx, "s", d.Answers.Clone(),
		crowdval.WithStrategy(crowdval.StrategyBaseline), crowdval.WithDeltaIngest()); err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	viewing := make(chan struct{})
	viewDone := make(chan error, 1)
	go func() {
		viewDone <- manager.View(ctx, "s", func(*crowdval.Session) error {
			close(viewing)
			<-release
			return nil
		})
	}()
	<-viewing

	const requests = 4
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := manager.AddAnswers(ctx, "s", []crowdval.Answer{{Object: i, Worker: 0, Label: 1}}); err != nil {
				t.Error(err)
			}
		}(i)
	}

	// Wait until every request has enqueued its ticket (they then block on
	// the write lock the view is holding read-side).
	manager.mu.Lock()
	e := manager.sessions["s"]
	manager.mu.Unlock()
	waitFor(t, func() bool {
		e.ingestMu.Lock()
		defer e.ingestMu.Unlock()
		return len(e.ingestQueue) == requests
	})
	close(release)
	wg.Wait()
	if err := <-viewDone; err != nil {
		t.Fatal(err)
	}

	stats := manager.Stats()
	if stats.IngestBatches != 1 {
		t.Fatalf("IngestBatches = %d, want 1 merged batch; stats %+v", stats.IngestBatches, stats)
	}
	if stats.CoalescedIngests != requests-1 {
		t.Fatalf("CoalescedIngests = %d, want %d; stats %+v", stats.CoalescedIngests, requests-1, stats)
	}
	if stats.IngestedAnswers != requests {
		t.Fatalf("IngestedAnswers = %d, want %d", stats.IngestedAnswers, requests)
	}

	// The same counters over the HTTP metrics endpoint.
	var viaHTTP Stats
	c.must("GET", "/v1/metrics", nil, &viaHTTP)
	if viaHTTP.IngestBatches != 1 || viaHTTP.CoalescedIngests != requests-1 {
		t.Fatalf("metrics endpoint reports %+v", viaHTTP)
	}
}

// TestFullPathSessionsDoNotCoalesce: sessions without the delta option keep
// the bit-for-bit serial-replay contract, so queued ingest requests must be
// applied one at a time in arrival order, never merged.
func TestFullPathSessionsDoNotCoalesce(t *testing.T) {
	_, manager := newTestServer(t, 0)
	ctx := context.Background()
	d := testCrowd(t, 20, 6, 9)
	if err := manager.Create(ctx, "s", d.Answers.Clone(), crowdval.WithStrategy(crowdval.StrategyBaseline)); err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	viewing := make(chan struct{})
	viewDone := make(chan error, 1)
	go func() {
		viewDone <- manager.View(ctx, "s", func(*crowdval.Session) error {
			close(viewing)
			<-release
			return nil
		})
	}()
	<-viewing

	const requests = 3
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := manager.AddAnswers(ctx, "s", []crowdval.Answer{{Object: i, Worker: 0, Label: 1}}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	manager.mu.Lock()
	e := manager.sessions["s"]
	manager.mu.Unlock()
	waitFor(t, func() bool {
		e.ingestMu.Lock()
		defer e.ingestMu.Unlock()
		return len(e.ingestQueue) == requests
	})
	close(release)
	wg.Wait()
	if err := <-viewDone; err != nil {
		t.Fatal(err)
	}

	stats := manager.Stats()
	if stats.IngestBatches != requests || stats.CoalescedIngests != 0 {
		t.Fatalf("full-path session coalesced: %+v", stats)
	}
	if stats.IngestedAnswers != requests {
		t.Fatalf("IngestedAnswers = %d, want %d", stats.IngestedAnswers, requests)
	}
}

// TestCoalescedIngestFallbackAttributesErrors: when a merged batch is
// rejected because one request carried an invalid answer, the per-ticket
// fallback must land the error on exactly that request and still apply the
// valid ones.
func TestCoalescedIngestFallbackAttributesErrors(t *testing.T) {
	_, manager := newTestServer(t, 0)
	ctx := context.Background()
	d := testCrowd(t, 20, 6, 7)
	// Merging only happens for delta sessions; the fallback under test is
	// the merged batch being rejected.
	if err := manager.Create(ctx, "s", d.Answers.Clone(),
		crowdval.WithStrategy(crowdval.StrategyBaseline), crowdval.WithDeltaIngest()); err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	viewing := make(chan struct{})
	viewDone := make(chan error, 1)
	go func() {
		viewDone <- manager.View(ctx, "s", func(*crowdval.Session) error {
			close(viewing)
			<-release
			return nil
		})
	}()
	<-viewing

	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			label := crowdval.Label(1)
			if i == 1 {
				label = crowdval.Label(99) // invalid: the task has 2 labels
			}
			_, errs[i] = manager.AddAnswers(ctx, "s", []crowdval.Answer{{Object: i, Worker: 0, Label: label}})
		}(i)
	}
	manager.mu.Lock()
	e := manager.sessions["s"]
	manager.mu.Unlock()
	waitFor(t, func() bool {
		e.ingestMu.Lock()
		defer e.ingestMu.Unlock()
		return len(e.ingestQueue) == 3
	})
	close(release)
	wg.Wait()
	if err := <-viewDone; err != nil {
		t.Fatal(err)
	}

	for i, err := range errs {
		if i == 1 {
			if !errors.Is(err, crowdval.ErrInvalidLabel) {
				t.Fatalf("bad request %d got %v, want ErrInvalidLabel", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("valid request %d failed: %v", i, err)
		}
	}
	stats := manager.Stats()
	if stats.IngestedAnswers != 2 {
		t.Fatalf("IngestedAnswers = %d, want the 2 valid ones", stats.IngestedAnswers)
	}
	if stats.CoalescedIngests != 0 {
		t.Fatalf("CoalescedIngests = %d after a per-ticket fallback, want 0", stats.CoalescedIngests)
	}
}
