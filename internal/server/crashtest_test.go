package server

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"crowdval"
	"crowdval/internal/aggregation"
	"crowdval/internal/fault"
	"crowdval/internal/wal"
)

// The crash harness meters every WAL file a manager opens against a shared
// byte budget (fault.Budget / fault.BudgetFile): the write that crosses the
// budget is truncated at the boundary and fails, and every later write or
// fsync fails too — the process "crashed" with exactly budget bytes durable.

// faultManager builds a durable manager whose WAL writes stop after budget
// bytes. budget < 0 disables the fault (clean run).
func faultManager(t testing.TB, walDir string, ckptEvery int, budget int64) *Manager {
	t.Helper()
	m, err := NewManager(walManagerConfig(t, walDir, ckptEvery))
	if err != nil {
		t.Fatal(err)
	}
	if budget >= 0 {
		shared := fault.NewBudget(budget)
		m.walOpen = func(name string, f *os.File) wal.File {
			return &fault.BudgetFile{F: f, Budget: shared}
		}
	}
	return m
}

// crashScript is the serial op sequence the harness replays at every crash
// point. Kept short: the clean log is walked byte by byte.
func crashScript(d, extra *crowdval.Dataset) []walOp {
	ops := walScript(d, extra)
	return []walOp{ops[0], ops[1], ops[2], ops[5], ops[7]}
}

// runToCrash creates the session and runs the script, tolerating injected
// failures. Returns whether the create was acked and which ops were.
func runToCrash(t testing.TB, m *Manager, name string, d *crowdval.Dataset, ops []walOp) (created bool, acked []bool) {
	t.Helper()
	err := m.Create(context.Background(), name, d.Answers.Clone(), sessionOpts()...)
	if err != nil {
		return false, make([]bool, len(ops))
	}
	return true, runScript(t, m, name, ops, false)
}

// verifyRecovery recovers the WAL dir into a fresh manager and checks the
// recovered session is byte-identical to a library-level serial replay of
// exactly the acknowledged ops. If the create itself was never acked, no
// session may surface.
func verifyRecovery(t testing.TB, walDir string, ckptEvery int, d *crowdval.Dataset, name string, created bool, ops []walOp, acked []bool) {
	t.Helper()
	m, err := NewManager(walManagerConfig(t, walDir, ckptEvery))
	if err != nil {
		t.Fatal(err)
	}
	report, err := m.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		if len(report) != 0 {
			t.Fatalf("unacked create resurfaced: %+v", report)
		}
		return
	}
	if len(report) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(report))
	}
	if report[0].Err != nil {
		t.Fatalf("recovery error: %v", report[0].Err)
	}
	got := managerSnapshot(t, m, name)
	want := replaySerial(t, d, sessionOpts(), ops, acked)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered state diverges from the %d acked ops (torn=%v, ckptLSN=%d, replayed=%d)",
			countTrue(acked), report[0].TornTail, report[0].CheckpointLSN, report[0].Replayed)
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// TestCrashAtEveryWALByte is the exhaustive kill harness for the append path:
// a clean SyncAlways run (checkpoints disabled so every byte lands in one
// file) measures the log size after each acknowledged op; then the run is
// repeated with the WAL cut at every record boundary, one byte past it, and
// every midpoint in between. At each crash point recovery must reconstruct
// exactly the acknowledged prefix — never a phantom op, never a lost ack.
func TestCrashAtEveryWALByte(t *testing.T) {
	d := testCrowd(t, 16, 5, 67)
	extra := testCrowd(t, 16, 3, 71)
	ops := crashScript(d, extra)
	const name = "crash"

	// Phase 1: clean run, record the durable boundary after each acked op.
	cleanDir := t.TempDir()
	m := faultManager(t, cleanDir, -1, -1)
	created, acked := runToCrash(t, m, name, d, ops)
	if !created || countTrue(acked) != len(ops) {
		t.Fatalf("clean run dropped ops: created=%v acked=%d/%d", created, countTrue(acked), len(ops))
	}
	info, err := os.Stat(m.walPath(name))
	if err != nil {
		t.Fatal(err)
	}
	logSize := info.Size()

	// Crash budgets: every byte of the log. The log is small by construction
	// (~a few KB), so this stays fast while covering each boundary, each
	// boundary+1, and every mid-record offset.
	for budget := int64(0); budget <= logSize; budget++ {
		budget := budget
		t.Run(fmt.Sprintf("budget-%d", budget), func(t *testing.T) {
			t.Parallel()
			walDir := t.TempDir()
			m := faultManager(t, walDir, -1, budget)
			created, acked := runToCrash(t, m, name, d, ops)
			verifyRecovery(t, walDir, -1, d, name, created, ops, acked)
		})
	}
}

// budgetCrashScript interleaves monetary budget installs with the mutation
// mix: a tight budget (θ=10, b=35: exactly three validations) is spent down
// to exhaustion, then refunded mid-stream. Every op is valid, so ack-or-not
// depends only on where the WAL was cut — and the recovered tracker (θ,
// total, spent, deadline) must equal the serial replay of exactly the acked
// ops, which the v4 snapshot comparison checks bit for bit.
func budgetCrashScript(d, extra *crowdval.Dataset) []walOp {
	base := walScript(d, extra)
	return []walOp{
		{budget: &crowdval.CostTracker{Theta: 10, Budget: 35}},
		base[0], // ingest
		base[1], // submit object 0: spent 1
		base[5], // batch of 2: spent 3, budget exhausted
		{budget: &crowdval.CostTracker{Theta: 10, Budget: 90}}, // refund; spent carries over
		base[7], // submit object 4: spent 4
	}
}

// TestCrashBudgetAtEveryWALByte is the kill-at-every-byte harness for the
// RecBudget record: the budgeted script is run with the WAL cut at every
// byte offset, and recovery must reconstruct the per-tenant budget state —
// θ, total, spent count, exhaustion — of exactly the acknowledged prefix.
// A lost budget install must not resurrect spending headroom, and a torn
// submit must not leave a phantom charge.
func TestCrashBudgetAtEveryWALByte(t *testing.T) {
	d := testCrowd(t, 16, 5, 97)
	extra := testCrowd(t, 16, 3, 101)
	ops := budgetCrashScript(d, extra)
	const name = "budgetcrash"

	cleanDir := t.TempDir()
	m := faultManager(t, cleanDir, -1, -1)
	created, acked := runToCrash(t, m, name, d, ops)
	if !created || countTrue(acked) != len(ops) {
		t.Fatalf("clean run dropped ops: created=%v acked=%d/%d", created, countTrue(acked), len(ops))
	}
	info, err := os.Stat(m.walPath(name))
	if err != nil {
		t.Fatal(err)
	}
	logSize := info.Size()

	for budget := int64(0); budget <= logSize; budget++ {
		budget := budget
		t.Run(fmt.Sprintf("budget-%d", budget), func(t *testing.T) {
			t.Parallel()
			walDir := t.TempDir()
			m := faultManager(t, walDir, -1, budget)
			created, acked := runToCrash(t, m, name, d, ops)
			verifyRecovery(t, walDir, -1, d, name, created, ops, acked)
		})
	}
}

// TestCrashBudgetDuringCheckpoint drives the budgeted script through
// aggressive checkpointing so crashes land inside v4 snapshot writes and log
// rewrites: a checkpoint that dies mid-write must fall back to the previous
// generation without losing or double-charging a single validation.
func TestCrashBudgetDuringCheckpoint(t *testing.T) {
	d := testCrowd(t, 16, 5, 103)
	extra := testCrowd(t, 16, 3, 107)
	ops := budgetCrashScript(d, extra)
	const name = "budgetckpt"

	m := faultManager(t, t.TempDir(), 2, -1)
	created, acked := runToCrash(t, m, name, d, ops)
	if !created || countTrue(acked) != len(ops) {
		t.Fatal("clean checkpointing run dropped ops")
	}
	total := m.Stats().WALBytes
	if m.Stats().Checkpoints < 2 {
		t.Fatalf("clean run made %d checkpoints; the test needs rotation", m.Stats().Checkpoints)
	}

	budgets := []int64{0, 1, total - 1, total}
	for b := int64(2); b < total-1; b += 7 {
		budgets = append(budgets, b)
	}
	for _, budget := range budgets {
		budget := budget
		t.Run(fmt.Sprintf("budget-%d", budget), func(t *testing.T) {
			t.Parallel()
			walDir := t.TempDir()
			m := faultManager(t, walDir, 2, budget)
			created, acked := runToCrash(t, m, name, d, ops)
			verifyRecovery(t, walDir, 2, d, name, created, ops, acked)
		})
	}
}

// TestCrashDuringCheckpoint aims crashes at the checkpoint/rotation machinery:
// with aggressive checkpointing the byte budget trips inside snapshot writes
// and log rewrites as often as inside appends. Rotation must never lose an
// acknowledged op regardless of where it dies — the old generation plus the
// untruncated log always suffices.
func TestCrashDuringCheckpoint(t *testing.T) {
	d := testCrowd(t, 16, 5, 73)
	extra := testCrowd(t, 16, 3, 79)
	ops := crashScript(d, extra)
	const name = "ckptcrash"

	// Phase 1: clean run with checkpoints every 2 records to find the total
	// WAL byte volume (appends + rewrites all metered by the budget).
	m := faultManager(t, t.TempDir(), 2, -1)
	created, acked := runToCrash(t, m, name, d, ops)
	if !created || countTrue(acked) != len(ops) {
		t.Fatal("clean checkpointing run dropped ops")
	}
	total := m.Stats().WALBytes
	if m.Stats().Checkpoints < 2 {
		t.Fatalf("clean run made %d checkpoints; the test needs rotation", m.Stats().Checkpoints)
	}

	// Phase 2: sample budgets across the whole write volume, plus the exact
	// edges. Step 7 is coprime with the record framing so samples drift
	// through every alignment class.
	budgets := []int64{0, 1, total - 1, total}
	for b := int64(2); b < total-1; b += 7 {
		budgets = append(budgets, b)
	}
	for _, budget := range budgets {
		budget := budget
		t.Run(fmt.Sprintf("budget-%d", budget), func(t *testing.T) {
			t.Parallel()
			walDir := t.TempDir()
			m := faultManager(t, walDir, 2, budget)
			created, acked := runToCrash(t, m, name, d, ops)
			verifyRecovery(t, walDir, 2, d, name, created, ops, acked)
		})
	}
}

// TestCrashDeltaSession covers the delta-ingest path, where coalescing makes
// the exact WAL record sequence racy and bit-identity with a serial replay is
// not the contract. Instead the recovered session must (a) be the exact state
// encoded by its own checkpoint+log — proven by replaying the surviving files
// through a second recovery and comparing bytes — and (b) be certificate-
// equal: settled to the fixed point within the session's own tolerance, with
// every acknowledged answer present.
func TestCrashDeltaSession(t *testing.T) {
	d := testCrowd(t, 24, 6, 83)
	extra := testCrowd(t, 24, 4, 89)
	const name = "delta"
	opts := sessionOpts(crowdval.WithDeltaIngest())

	// Ingest concurrently so the coalescing path (merged batch records) is
	// actually exercised, with validations interleaved.
	runDelta := func(m *Manager) (int64, bool) {
		if err := m.Create(context.Background(), name, d.Answers.Clone(), opts...); err != nil {
			return 0, false
		}
		var ackedAnswers atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < extra.Answers.NumWorkers(); w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var answers []crowdval.Answer
				for o := 0; o < extra.Answers.NumObjects(); o++ {
					if l := extra.Answers.Answer(o, w); l >= 0 {
						answers = append(answers, crowdval.Answer{Object: o, Worker: d.Answers.NumWorkers() + w, Label: l})
					}
				}
				if n, err := m.AddAnswers(context.Background(), name, answers); err == nil {
					ackedAnswers.Add(int64(n))
				}
			}(w)
		}
		for o := 0; o < 4; o++ {
			_, _ = m.Submit(context.Background(), name, o, d.Truth[o])
		}
		wg.Wait()
		return ackedAnswers.Add(0), true
	}

	// Clean run to size the budget sweep.
	m := faultManager(t, t.TempDir(), 3, -1)
	if _, ok := runDelta(m); !ok {
		t.Fatal("clean delta run failed to create")
	}
	total := m.Stats().WALBytes

	for _, frac := range []int64{4, 2, 3} {
		budget := total * (frac - 1) / frac
		t.Run(fmt.Sprintf("budget-%d", budget), func(t *testing.T) {
			walDir := t.TempDir()
			m := faultManager(t, walDir, 3, budget)
			_, created := runDelta(m)
			if !created {
				return
			}
			baseline := d.Answers.AnswerCount()

			m2, err := NewManager(walManagerConfig(t, walDir, 3))
			if err != nil {
				t.Fatal(err)
			}
			report, err := m2.Recover(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if len(report) != 1 || report[0].Err != nil {
				t.Fatalf("delta recovery report: %+v", report)
			}
			snap := managerSnapshot(t, m2, name)

			// (a) Determinism: a second recovery of the rewritten files
			// reproduces the same bytes.
			m3, err := NewManager(walManagerConfig(t, walDir, 3))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m3.Recover(context.Background()); err != nil {
				t.Fatal(err)
			}
			if snap2 := managerSnapshot(t, m3, name); !bytes.Equal(snap, snap2) {
				t.Fatal("delta recovery is not deterministic across runs")
			}

			// (b) Certificate equality: the recovered session is settled at
			// the fixed point and holds at least the baseline answers (acked
			// extras may or may not be durable depending on the crash point,
			// but the seed crowd always is — it's in the create record).
			sess, err := crowdval.ResumeSession(snap, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if got := sess.AnswerCount(); got < baseline {
				t.Fatalf("recovered session lost seed answers: %d < %d", got, baseline)
			}
			residual, err := aggregation.FixedPointResidual(context.Background(), sess.ProbabilisticResult(), 1)
			if err != nil {
				t.Fatal(err)
			}
			if residual >= 2*aggregation.DefaultSettleTolerance {
				t.Fatalf("recovered delta session off the fixed point: residual %g", residual)
			}
		})
	}
}
