package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"crowdval"
)

// TestNextEndpointRanking: ?k= returns a ranked batch whose head is the
// plain next-object selection, scores descending, ties toward the smaller
// object.
func TestNextEndpointRanking(t *testing.T) {
	c, _ := newTestServer(t, 0)
	d := testCrowd(t, 30, 8, 1)
	c.must("POST", "/v1/sessions", CreateSessionRequest{
		Name:   "rank",
		Matrix: matrixOf(d.Answers),
		Options: SessionConfig{
			Strategy: string(crowdval.StrategyUncertainty), Seed: 3, DeltaScoring: true,
		},
	}, nil)

	var first NextResponse
	c.must("GET", "/v1/sessions/rank/next?k=4", nil, &first)
	if len(first.Ranking) != 4 {
		t.Fatalf("ranking has %d entries, want 4: %+v", len(first.Ranking), first)
	}
	if first.Object != first.Ranking[0].Object {
		t.Fatalf("object %d != ranking head %d", first.Object, first.Ranking[0].Object)
	}
	for i := 1; i < len(first.Ranking); i++ {
		prev, cur := first.Ranking[i-1], first.Ranking[i]
		if prev.Score < cur.Score || (prev.Score == cur.Score && prev.Object > cur.Object) {
			t.Fatalf("ranking order violated: %+v", first.Ranking)
		}
	}

	// Selection is read-only: the un-batched endpoint returns the same head,
	// and the default k is 1.
	var single NextResponse
	c.must("GET", "/v1/sessions/rank/next", nil, &single)
	if single.Object != first.Object || len(single.Ranking) != 1 {
		t.Fatalf("default next = %+v, want object %d with a 1-entry ranking", single, first.Object)
	}
}

// TestNextEndpointBadK: malformed or out-of-range k values are client errors.
func TestNextEndpointBadK(t *testing.T) {
	c, _ := newTestServer(t, 0)
	d := testCrowd(t, 10, 5, 2)
	c.must("POST", "/v1/sessions", CreateSessionRequest{
		Name: "badk", Matrix: matrixOf(d.Answers), Options: createOptions(1),
	}, nil)
	for _, k := range []string{"0", "-3", "nope", "1001"} {
		status, _ := c.do("GET", "/v1/sessions/badk/next?k="+k, nil, nil)
		if status != http.StatusBadRequest {
			t.Fatalf("k=%s: status %d, want 400", k, status)
		}
	}
}

// TestNextServedUnderReadLock: concurrent next requests and result views on
// the same session proceed together (both are read-path operations now) and
// stay race-free — the -race build is the actual assertion — while an
// interleaved writer keeps mutating the session.
func TestNextServedUnderReadLock(t *testing.T) {
	c, _ := newTestServer(t, 0)
	d := testCrowd(t, 40, 10, 3)
	c.must("POST", "/v1/sessions", CreateSessionRequest{
		Name:   "concurrent",
		Matrix: matrixOf(d.Answers),
		Options: SessionConfig{
			Strategy: string(crowdval.StrategyHybrid), Seed: 5, DeltaScoring: true,
		},
	}, nil)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				switch g % 3 {
				case 0: // next rankings
					var next NextResponse
					if status, errResp := c.do("GET", "/v1/sessions/concurrent/next?k=3", nil, &next); errResp != nil {
						errs <- fmt.Sprintf("next: status %d: %+v", status, errResp)
						return
					}
				case 1: // result views
					var result ResultResponse
					if status, errResp := c.do("GET", "/v1/sessions/concurrent/result", nil, &result); errResp != nil {
						errs <- fmt.Sprintf("result: status %d: %+v", status, errResp)
						return
					}
				case 2: // snapshots read the strategy state under the selection lock
					c.snapshotBytes("concurrent")
				}
			}
		}(g)
	}
	// One writer ingests concurrently; writers still serialize against the
	// read-path operations through the session RWMutex.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			req := IngestRequest{Answers: []AnswerJSON{{Object: i % 40, Worker: i % 10, Label: i % 2}}}
			if status, errResp := c.do("POST", "/v1/sessions/concurrent/answers", req, nil); errResp != nil {
				errs <- fmt.Sprintf("ingest: status %d: %+v", status, errResp)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
