// Package dataset persists crowdsourcing datasets (answer matrices, optional
// ground truth and worker types) as JSON files and loads them back. It is
// the storage substrate used by the command-line tools so that generated
// crowds, collected answers and expert validations can move between
// invocations of cmd/crowdval.
//
// The on-disk format lists answers as sparse (object, worker, label)
// triples — mirroring the answer-set vocabulary N = <O, W, L, M> of
// "Minimizing Efforts in Validating Crowd Answers" (SIGMOD 2015, §3.1) and
// matching the in-memory adjacency-list representation of model.AnswerSet,
// so file size is proportional to the number of answers rather than to n×k.
package dataset
