package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crowdval/internal/model"
	"crowdval/internal/simulation"
)

func sampleFile(t *testing.T) *File {
	t.Helper()
	d, err := simulation.GenerateCrowd(simulation.CrowdConfig{
		NumObjects: 12, NumWorkers: 6, NumLabels: 3, AnswersPerObject: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Name = "sample"
	d.Answers.LabelNames = []string{"a", "b", "c"}
	v := model.NewValidation(12)
	v.Set(0, d.Truth[0])
	v.Set(5, d.Truth[5])
	return &File{Dataset: d, Validation: v}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := sampleFile(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset.Name != "sample" {
		t.Fatalf("name = %q", got.Dataset.Name)
	}
	orig := f.Dataset.Answers
	loaded := got.Dataset.Answers
	if loaded.NumObjects() != orig.NumObjects() || loaded.NumWorkers() != orig.NumWorkers() || loaded.NumLabels() != orig.NumLabels() {
		t.Fatal("dimensions not preserved")
	}
	for o := 0; o < orig.NumObjects(); o++ {
		for w := 0; w < orig.NumWorkers(); w++ {
			if orig.Answer(o, w) != loaded.Answer(o, w) {
				t.Fatalf("answer (%d,%d) not preserved", o, w)
			}
		}
	}
	for o, l := range f.Dataset.Truth {
		if got.Dataset.Truth[o] != l {
			t.Fatal("truth not preserved")
		}
	}
	if len(got.Dataset.WorkerTypes) != len(f.Dataset.WorkerTypes) {
		t.Fatal("worker types not preserved")
	}
	if got.Validation.Count() != 2 || got.Validation.Get(5) != f.Dataset.Truth[5] {
		t.Fatal("validations not preserved")
	}
	if got.Dataset.Answers.LabelNames[1] != "b" {
		t.Fatal("label names not preserved")
	}
}

func TestSaveLoad(t *testing.T) {
	f := sampleFile(t)
	path := filepath.Join(t.TempDir(), "data.json")
	if err := Save(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset.Answers.AnswerCount() != f.Dataset.Answers.AnswerCount() {
		t.Fatal("answers lost on disk round trip")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := Save(filepath.Join(t.TempDir(), "no", "such", "dir", "x.json"), f); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestWriteInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err == nil {
		t.Fatal("nil file accepted")
	}
	if err := Write(&buf, &File{}); err == nil {
		t.Fatal("empty file accepted")
	}
}

func TestReadInvalid(t *testing.T) {
	cases := map[string]string{
		"not json":            "{",
		"bad dimensions":      `{"num_objects":0,"num_workers":1,"num_labels":2}`,
		"answer out of range": `{"num_objects":2,"num_workers":2,"num_labels":2,"answers":[[5,0,1]]}`,
		"truth length":        `{"num_objects":2,"num_workers":2,"num_labels":2,"answers":[],"truth":[1]}`,
		"invalid validation":  `{"num_objects":2,"num_workers":2,"num_labels":2,"answers":[],"validations":[[0,7]]}`,
		"validation object":   `{"num_objects":2,"num_workers":2,"num_labels":2,"answers":[],"validations":[[9,0]]}`,
	}
	for name, payload := range cases {
		if _, err := Read(strings.NewReader(payload)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestLoadRejectsGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("garbage file accepted")
	}
}
