package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"crowdval/internal/model"
	"crowdval/internal/simulation"
)

// fileFormat is the on-disk JSON representation of a dataset.
type fileFormat struct {
	Name        string   `json:"name"`
	NumObjects  int      `json:"num_objects"`
	NumWorkers  int      `json:"num_workers"`
	NumLabels   int      `json:"num_labels"`
	LabelNames  []string `json:"label_names,omitempty"`
	ObjectNames []string `json:"object_names,omitempty"`
	WorkerNames []string `json:"worker_names,omitempty"`
	// Answers holds one entry per (object, worker, label) triple.
	Answers [][3]int `json:"answers"`
	// Truth holds the ground-truth label per object (-1 = unknown).
	Truth []int `json:"truth,omitempty"`
	// WorkerTypes holds the simulated worker types (only for synthetic data).
	WorkerTypes []int `json:"worker_types,omitempty"`
	// Validations holds expert validations as (object, label) pairs.
	Validations [][2]int `json:"validations,omitempty"`
}

// File bundles everything the CLI stores: the dataset plus any expert
// validations collected so far.
type File struct {
	Dataset    *simulation.Dataset
	Validation *model.Validation
}

// Write serializes the dataset (and optional validations) to the writer.
func Write(w io.Writer, f *File) error {
	if f == nil || f.Dataset == nil || f.Dataset.Answers == nil {
		return fmt.Errorf("dataset: nothing to write")
	}
	d := f.Dataset
	out := fileFormat{
		Name:        d.Name,
		NumObjects:  d.Answers.NumObjects(),
		NumWorkers:  d.Answers.NumWorkers(),
		NumLabels:   d.Answers.NumLabels(),
		LabelNames:  d.Answers.LabelNames,
		ObjectNames: d.Answers.ObjectNames,
		WorkerNames: d.Answers.WorkerNames,
	}
	for o := 0; o < d.Answers.NumObjects(); o++ {
		for _, wa := range d.Answers.ObjectView(o) {
			out.Answers = append(out.Answers, [3]int{o, wa.Worker, int(wa.Label)})
		}
	}
	if len(d.Truth) > 0 {
		out.Truth = make([]int, len(d.Truth))
		for o, l := range d.Truth {
			out.Truth[o] = int(l)
		}
	}
	for _, t := range d.WorkerTypes {
		out.WorkerTypes = append(out.WorkerTypes, int(t))
	}
	if f.Validation != nil {
		for _, o := range f.Validation.ValidatedObjects() {
			out.Validations = append(out.Validations, [2]int{o, int(f.Validation.Get(o))})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Read parses a dataset file from the reader.
func Read(r io.Reader) (*File, error) {
	var in fileFormat
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("dataset: decoding: %w", err)
	}
	answers, err := model.NewAnswerSet(in.NumObjects, in.NumWorkers, in.NumLabels)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	answers.LabelNames = in.LabelNames
	answers.ObjectNames = in.ObjectNames
	answers.WorkerNames = in.WorkerNames
	for _, a := range in.Answers {
		if err := answers.SetAnswer(a[0], a[1], model.Label(a[2])); err != nil {
			return nil, fmt.Errorf("dataset: answer %v: %w", a, err)
		}
	}
	d := &simulation.Dataset{Name: in.Name, Answers: answers}
	if len(in.Truth) > 0 {
		if len(in.Truth) != in.NumObjects {
			return nil, fmt.Errorf("dataset: truth covers %d objects, expected %d", len(in.Truth), in.NumObjects)
		}
		d.Truth = make(model.DeterministicAssignment, len(in.Truth))
		for o, l := range in.Truth {
			d.Truth[o] = model.Label(l)
		}
	}
	for _, t := range in.WorkerTypes {
		d.WorkerTypes = append(d.WorkerTypes, model.WorkerType(t))
	}
	validation := model.NewValidation(in.NumObjects)
	for _, v := range in.Validations {
		if v[0] < 0 || v[0] >= in.NumObjects || !model.Label(v[1]).Valid(in.NumLabels) {
			return nil, fmt.Errorf("dataset: invalid validation %v", v)
		}
		validation.Set(v[0], model.Label(v[1]))
	}
	return &File{Dataset: d, Validation: validation}, nil
}

// Save writes the dataset file to the given path.
func Save(path string, f *File) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer out.Close()
	if err := Write(out, f); err != nil {
		return err
	}
	return out.Close()
}

// Load reads a dataset file from the given path.
func Load(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer in.Close()
	return Read(in)
}
