package metrics

import (
	"fmt"
	"math"

	"crowdval/internal/model"
)

// Precision returns P_i, the fraction of objects whose assigned label matches
// the ground truth g (Eq. in §6.1). Objects whose ground-truth label is
// NoLabel are skipped; if every object is skipped the precision is 0.
func Precision(d model.DeterministicAssignment, g model.DeterministicAssignment) float64 {
	if len(d) == 0 || len(d) != len(g) {
		return 0
	}
	correct, total := 0, 0
	for o := range d {
		if g[o] == model.NoLabel {
			continue
		}
		total++
		if d[o] == g[o] {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PrecisionImprovement returns R_i = (P_i − P_0)/(1 − P_0), the normalized
// precision improvement relative to the initial precision P0. When P0 is
// already 1 the improvement is defined as 1 if Pi is also 1, otherwise 0.
func PrecisionImprovement(pi, p0 float64) float64 {
	if p0 >= 1 {
		if pi >= 1 {
			return 1
		}
		return 0
	}
	r := (pi - p0) / (1 - p0)
	if r < 0 {
		return 0
	}
	return r
}

// RelativeEffort returns E_i = i/n, the number of expert validations relative
// to the number of objects.
func RelativeEffort(validations, numObjects int) float64 {
	if numObjects <= 0 {
		return 0
	}
	return float64(validations) / float64(numObjects)
}

// PrecisionRecall computes precision and recall of a detection task given the
// set of predicted positives and the set of actual positives. With no
// predictions the precision is 1 by convention (nothing wrongly flagged);
// with no actual positives the recall is 1.
func PrecisionRecall(predicted, actual []int) (precision, recall float64) {
	actualSet := make(map[int]bool, len(actual))
	for _, a := range actual {
		actualSet[a] = true
	}
	tp := 0
	for _, p := range predicted {
		if actualSet[p] {
			tp++
		}
	}
	if len(predicted) == 0 {
		precision = 1
	} else {
		precision = float64(tp) / float64(len(predicted))
	}
	if len(actual) == 0 {
		recall = 1
	} else {
		recall = float64(tp) / float64(len(actual))
	}
	return precision, recall
}

// F1 returns the harmonic mean of precision and recall (0 when both are 0).
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// PearsonCorrelation returns the Pearson correlation coefficient of two
// equally long series. It returns an error if the lengths differ, fewer than
// two points are given, or one of the series has zero variance.
func PearsonCorrelation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("metrics: series lengths differ (%d vs %d)", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("metrics: need at least two points, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("metrics: zero variance series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Histogram bins values from [0, 1] into numBins equal-width bins and returns
// the fraction of values per bin. Values outside [0, 1] are clamped.
func Histogram(values []float64, numBins int) []float64 {
	if numBins <= 0 {
		return nil
	}
	counts := make([]float64, numBins)
	if len(values) == 0 {
		return counts
	}
	for _, v := range values {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		bin := int(v * float64(numBins))
		if bin >= numBins {
			bin = numBins - 1
		}
		counts[bin]++
	}
	for i := range counts {
		counts[i] /= float64(len(values))
	}
	return counts
}

// SensitivitySpecificity computes, for binary tasks (labels 0 = negative,
// 1 = positive), the sensitivity (true-positive rate) and specificity
// (true-negative rate) of a worker's answers against the ground truth. It is
// used to reproduce the worker-type characterization of Figure 1.
func SensitivitySpecificity(answers *model.AnswerSet, worker int, truth model.DeterministicAssignment) (sensitivity, specificity float64) {
	var tp, fn, tn, fp int
	for _, oa := range answers.WorkerView(worker) {
		o, a := oa.Object, oa.Label
		if o >= len(truth) || truth[o] == model.NoLabel {
			continue
		}
		switch truth[o] {
		case 1:
			if a == 1 {
				tp++
			} else {
				fn++
			}
		case 0:
			if a == 0 {
				tn++
			} else {
				fp++
			}
		}
	}
	if tp+fn > 0 {
		sensitivity = float64(tp) / float64(tp+fn)
	}
	if tn+fp > 0 {
		specificity = float64(tn) / float64(tn+fp)
	}
	return sensitivity, specificity
}
