// Package metrics implements the evaluation measures of §6.1 and the
// appendices of "Minimizing Efforts in Validating Crowd Answers" (SIGMOD
// 2015): precision of a deterministic assignment against a ground truth,
// percentage of precision improvement, relative expert effort,
// precision/recall of the faulty-worker detection, Pearson correlation,
// probability histograms (Figure 6) and the sensitivity/specificity
// characterization of worker types (Figure 1).
//
// The experiment harness (internal/experiments) consumes these measures to
// reproduce the paper's tables and figures; applications can use them to
// evaluate their own validation runs whenever a (partial) ground truth is
// available.
package metrics
