package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"crowdval/internal/model"
)

func TestPrecision(t *testing.T) {
	d := model.DeterministicAssignment{0, 1, 1, 0}
	g := model.DeterministicAssignment{0, 1, 0, 0}
	if got := Precision(d, g); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Precision = %v, want 0.75", got)
	}
	// Unknown ground truth entries are skipped.
	g2 := model.DeterministicAssignment{0, model.NoLabel, 0, 0}
	if got := Precision(d, g2); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("Precision with NoLabel truth = %v", got)
	}
	if Precision(nil, nil) != 0 {
		t.Fatal("empty precision should be 0")
	}
	if Precision(d, g[:2]) != 0 {
		t.Fatal("length mismatch should be 0")
	}
	allUnknown := model.DeterministicAssignment{model.NoLabel, model.NoLabel, model.NoLabel, model.NoLabel}
	if Precision(d, allUnknown) != 0 {
		t.Fatal("all-unknown truth should be 0")
	}
}

func TestPrecisionImprovement(t *testing.T) {
	if got := PrecisionImprovement(0.9, 0.8); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("improvement = %v, want 0.5", got)
	}
	if got := PrecisionImprovement(0.7, 0.8); got != 0 {
		t.Fatalf("negative improvement should clamp to 0, got %v", got)
	}
	if got := PrecisionImprovement(1, 1); got != 1 {
		t.Fatalf("perfect-to-perfect = %v, want 1", got)
	}
	if got := PrecisionImprovement(0.9, 1); got != 0 {
		t.Fatalf("degraded from perfect = %v, want 0", got)
	}
}

func TestRelativeEffort(t *testing.T) {
	if got := RelativeEffort(5, 20); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("RelativeEffort = %v", got)
	}
	if RelativeEffort(5, 0) != 0 {
		t.Fatal("zero objects should yield 0")
	}
}

func TestPrecisionRecall(t *testing.T) {
	p, r := PrecisionRecall([]int{1, 2, 3}, []int{2, 3, 4, 5})
	if math.Abs(p-2.0/3.0) > 1e-12 || math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("P/R = %v/%v", p, r)
	}
	p, r = PrecisionRecall(nil, []int{1})
	if p != 1 || r != 0 {
		t.Fatalf("no predictions: P/R = %v/%v", p, r)
	}
	p, r = PrecisionRecall([]int{1}, nil)
	if p != 0 || r != 1 {
		t.Fatalf("no actual positives: P/R = %v/%v", p, r)
	}
	if got := F1(0, 0); got != 0 {
		t.Fatalf("F1(0,0) = %v", got)
	}
	if got := F1(0.5, 1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("F1 = %v", got)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty slices should give 0")
	}
}

func TestPearsonCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ysPos := []float64{2, 4, 6, 8, 10}
	ysNeg := []float64{10, 8, 6, 4, 2}
	if got, err := PearsonCorrelation(xs, ysPos); err != nil || math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect positive correlation = %v (%v)", got, err)
	}
	if got, err := PearsonCorrelation(xs, ysNeg); err != nil || math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect negative correlation = %v (%v)", got, err)
	}
	if _, err := PearsonCorrelation(xs, ysPos[:3]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := PearsonCorrelation([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := PearsonCorrelation([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("zero variance accepted")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.05, 0.15, 0.95, 1.2, -0.3}, 10)
	if len(h) != 10 {
		t.Fatalf("bins = %d", len(h))
	}
	if math.Abs(h[0]-0.4) > 1e-12 { // 0.05 and clamped -0.3
		t.Fatalf("bin 0 = %v", h[0])
	}
	if math.Abs(h[9]-0.4) > 1e-12 { // 0.95 and clamped 1.2
		t.Fatalf("bin 9 = %v", h[9])
	}
	if math.Abs(h[1]-0.2) > 1e-12 {
		t.Fatalf("bin 1 = %v", h[1])
	}
	if Histogram(nil, 0) != nil {
		t.Fatal("zero bins should give nil")
	}
	empty := Histogram(nil, 3)
	if len(empty) != 3 || empty[0] != 0 {
		t.Fatal("empty values should give zero bins")
	}
}

func TestSensitivitySpecificity(t *testing.T) {
	a := model.MustNewAnswerSet(4, 1, 2)
	truth := model.DeterministicAssignment{1, 1, 0, 0}
	// Worker answers: TP, FN, TN, FP.
	for o, l := range []model.Label{1, 0, 0, 1} {
		if err := a.SetAnswer(o, 0, l); err != nil {
			t.Fatal(err)
		}
	}
	sens, spec := SensitivitySpecificity(a, 0, truth)
	if math.Abs(sens-0.5) > 1e-12 || math.Abs(spec-0.5) > 1e-12 {
		t.Fatalf("sens/spec = %v/%v", sens, spec)
	}
	// Worker with no answers.
	b := model.MustNewAnswerSet(4, 1, 2)
	sens, spec = SensitivitySpecificity(b, 0, truth)
	if sens != 0 || spec != 0 {
		t.Fatalf("no answers should give 0/0, got %v/%v", sens, spec)
	}
}

// Property: precision is always within [0, 1] and equals 1 iff the assignment
// matches the truth on every known object.
func TestPrecisionBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		d := make(model.DeterministicAssignment, n)
		g := make(model.DeterministicAssignment, n)
		for i := 0; i < n; i++ {
			d[i] = model.Label(int(raw[i]) % 3)
			g[i] = model.Label(int(raw[n+i]) % 3)
		}
		p := Precision(d, g)
		if p < 0 || p > 1 {
			return false
		}
		allMatch := true
		for i := 0; i < n; i++ {
			if d[i] != g[i] {
				allMatch = false
				break
			}
		}
		if allMatch && p != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
