package crowdval

import (
	"math/rand"
	"testing"

	"crowdval/internal/aggregation"
	"crowdval/internal/experiments"
	"crowdval/internal/guidance"
	"crowdval/internal/linalg"
	"crowdval/internal/model"
	"crowdval/internal/simulation"
	"crowdval/internal/spamdetect"
)

// benchmarkExperiment runs one evaluation experiment (a full table/figure of
// the paper) per benchmark iteration. Absolute times differ from the paper's
// testbed; EXPERIMENTS.md records the qualitative comparison.
func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(experiments.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per table and figure of the evaluation section.

func BenchmarkFigure1WorkerTypes(b *testing.B)          { benchmarkExperiment(b, "figure1") }
func BenchmarkFigure4ResponseTime(b *testing.B)         { benchmarkExperiment(b, "figure4") }
func BenchmarkTable5Partitioning(b *testing.B)          { benchmarkExperiment(b, "table5") }
func BenchmarkFigure5SeparateVsCombined(b *testing.B)   { benchmarkExperiment(b, "figure5") }
func BenchmarkFigure6ProbabilityHistogram(b *testing.B) { benchmarkExperiment(b, "figure6") }
func BenchmarkFigure7IEMSameSelection(b *testing.B)     { benchmarkExperiment(b, "figure7") }
func BenchmarkFigure8IterationReduction(b *testing.B)   { benchmarkExperiment(b, "figure8") }
func BenchmarkFigure9SpammerDetection(b *testing.B)     { benchmarkExperiment(b, "figure9") }
func BenchmarkFigure10Guidance(b *testing.B)            { benchmarkExperiment(b, "figure10") }
func BenchmarkFigure11ExpertMistakes(b *testing.B)      { benchmarkExperiment(b, "figure11") }
func BenchmarkTable6MistakeDetection(b *testing.B)      { benchmarkExperiment(b, "table6") }
func BenchmarkFigure12CostTradeoff(b *testing.B)        { benchmarkExperiment(b, "figure12") }
func BenchmarkFigure13BudgetAllocation(b *testing.B)    { benchmarkExperiment(b, "figure13") }
func BenchmarkFigure14TimeConstraint(b *testing.B)      { benchmarkExperiment(b, "figure14") }
func BenchmarkFigure15UncertaintyPrecision(b *testing.B) {
	benchmarkExperiment(b, "figure15")
}
func BenchmarkFigure16QuestionDifficulty(b *testing.B) { benchmarkExperiment(b, "figure16") }
func BenchmarkFigure17NumLabels(b *testing.B)          { benchmarkExperiment(b, "figure17") }
func BenchmarkFigure18NumWorkers(b *testing.B)         { benchmarkExperiment(b, "figure18") }
func BenchmarkFigure19Reliability(b *testing.B)        { benchmarkExperiment(b, "figure19") }
func BenchmarkFigure20Spammers(b *testing.B)           { benchmarkExperiment(b, "figure20") }
func BenchmarkFigure21DifficultyCost(b *testing.B)     { benchmarkExperiment(b, "figure21") }
func BenchmarkFigure22SpammerCost(b *testing.B)        { benchmarkExperiment(b, "figure22") }
func BenchmarkFigure23ReliabilityCost(b *testing.B)    { benchmarkExperiment(b, "figure23") }

// Ablation benches for the design choices called out in DESIGN.md.

func BenchmarkAblationStrategies(b *testing.B) { benchmarkExperiment(b, "ablation-strategies") }
func BenchmarkAblationConfirmationPeriod(b *testing.B) {
	benchmarkExperiment(b, "ablation-confirmation")
}

// Micro-benchmarks of the core building blocks.

func benchmarkDataset(b *testing.B, objects, workers int) *simulation.Dataset {
	b.Helper()
	d, err := simulation.GenerateCrowd(simulation.CrowdConfig{
		NumObjects:     objects,
		NumWorkers:     workers,
		NumLabels:      2,
		NormalAccuracy: 0.7,
		Seed:           1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkMajorityVoting(b *testing.B) {
	d := benchmarkDataset(b, 200, 40)
	mv := &aggregation.MajorityVoting{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mv.Aggregate(d.Answers, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchEM(b *testing.B) {
	d := benchmarkDataset(b, 200, 40)
	em := &aggregation.BatchEM{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.Aggregate(d.Answers, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalEMWarmStart(b *testing.B) {
	d := benchmarkDataset(b, 200, 40)
	iem := &aggregation.IncrementalEM{}
	validation := model.NewValidation(d.Answers.NumObjects())
	res, err := iem.Aggregate(d.Answers, validation, nil)
	if err != nil {
		b.Fatal(err)
	}
	validation.Set(0, d.Truth[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iem.Aggregate(d.Answers, validation, res.ProbSet); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpammerDetection(b *testing.B) {
	d := benchmarkDataset(b, 200, 40)
	validation := model.NewValidation(d.Answers.NumObjects())
	for o := 0; o < 100; o++ {
		validation.Set(o, d.Truth[o])
	}
	det := &spamdetect.Detector{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(d.Answers, validation, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHybridSelection(b *testing.B) {
	d := benchmarkDataset(b, 60, 20)
	iem := &aggregation.IncrementalEM{}
	res, err := iem.Aggregate(d.Answers, model.NewValidation(d.Answers.NumObjects()), nil)
	if err != nil {
		b.Fatal(err)
	}
	strategy := &guidance.Hybrid{
		Uncertainty: &guidance.UncertaintyDriven{CandidateLimit: 6},
		Worker:      &guidance.WorkerDriven{CandidateLimit: 6},
		Rand:        rand.New(rand.NewSource(1)),
	}
	ctx := &guidance.Context{
		Answers:    d.Answers,
		ProbSet:    res.ProbSet,
		Aggregator: iem,
		Detector:   &spamdetect.Detector{},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strategy.Select(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkSparseCrowd generates a large sparse crowd: perObject answers per
// object, i.e. density perObject/workers (≈1% for 5/500).
func benchmarkSparseCrowd(b *testing.B, objects, workers, perObject int) *simulation.Dataset {
	b.Helper()
	d, err := simulation.GenerateCrowd(simulation.CrowdConfig{
		NumObjects:       objects,
		NumWorkers:       workers,
		NumLabels:        2,
		NormalAccuracy:   0.7,
		AnswersPerObject: perObject,
		Seed:             1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// benchmarkAggregateSize compares, on one crowd shape, the pre-optimization
// pipeline (dense n×k matrix, single-goroutine EM — see
// reference_dense_test.go) against the sparse representation with serial and
// sharded E-/M-steps. BENCHMARKS.md records the measured numbers.
func benchmarkAggregateSize(b *testing.B, objects, workers, perObject int) {
	d := benchmarkSparseCrowd(b, objects, workers, perObject)
	validation := model.NewValidation(objects)
	for o := 0; o < objects/100; o++ {
		validation.Set(o*97%objects, d.Truth[o*97%objects])
	}

	b.Run("dense-serial", func(b *testing.B) {
		dense := newDenseAnswers(d.Answers)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			denseSerialIEM(dense, validation, nil, aggregation.EMConfig{})
		}
	})
	b.Run("sparse-serial", func(b *testing.B) {
		iem := &aggregation.IncrementalEM{Config: aggregation.EMConfig{Parallelism: 1}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := iem.Aggregate(d.Answers, validation, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparse-parallel", func(b *testing.B) {
		iem := &aggregation.IncrementalEM{} // Parallelism 0 = GOMAXPROCS shards
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := iem.Aggregate(d.Answers, validation, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAggregate is the headline hot-path benchmark: a cold-start i-EM
// aggregation on sparse crowds, before (dense serial) and after (sparse,
// sharded) the hot-path rebuild.
func BenchmarkAggregate(b *testing.B) {
	b.Run("2500x100", func(b *testing.B) { benchmarkAggregateSize(b, 2500, 100, 8) })
	b.Run("50000x500", func(b *testing.B) { benchmarkAggregateSize(b, 50000, 500, 5) })
}

// BenchmarkAggregateWarmStart measures the pay-as-you-go path: one new
// expert validation arrives and i-EM re-aggregates from the previous
// probabilistic answer set (§4.1). This is the call that runs after every
// expert answer, so its cost bounds the interactive latency.
func BenchmarkAggregateWarmStart(b *testing.B) {
	const objects, workers, perObject = 50000, 500, 5
	d := benchmarkSparseCrowd(b, objects, workers, perObject)
	validation := model.NewValidation(objects)
	iemWarm := &aggregation.IncrementalEM{}
	res, err := iemWarm.Aggregate(d.Answers, validation, nil)
	if err != nil {
		b.Fatal(err)
	}
	validation.Set(0, d.Truth[0])

	b.Run("dense-serial", func(b *testing.B) {
		dense := newDenseAnswers(d.Answers)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			denseSerialIEM(dense, validation, res.ProbSet, aggregation.EMConfig{})
		}
	})
	b.Run("sparse-serial", func(b *testing.B) {
		iem := &aggregation.IncrementalEM{Config: aggregation.EMConfig{Parallelism: 1}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := iem.Aggregate(d.Answers, validation, res.ProbSet); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparse-parallel", func(b *testing.B) {
		iem := &aggregation.IncrementalEM{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := iem.Aggregate(d.Answers, validation, res.ProbSet); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchmarkNextObject compares the two guidance scorers on one crowd shape
// over an identical candidate set (the 64 highest-entropy unvalidated
// objects, ~1% of objects expert-validated like BenchmarkAggregate):
//
//   - exact-full-em — the frozen reference: one full warm-started EM
//     re-aggregation per (candidate, label) hypothesis (Eq. 8 literally).
//   - delta — the delta-accelerated scorer: one frontier-restricted
//     hypothetical E/M/E pass per hypothesis against pooled scratch buffers
//     (aggregation.ScoreIndex/HypoScratch).
//
// Selection runs serially (Parallelism 1) so the ratio isolates the
// algorithmic win, matching the BENCHMARKS.md single-core methodology.
func benchmarkNextObject(b *testing.B, objects, workers, perObject int) {
	d := benchmarkSparseCrowd(b, objects, workers, perObject)
	validation := model.NewValidation(objects)
	for o := 0; o < objects/100; o++ {
		validation.Set(o*97%objects, d.Truth[o*97%objects])
	}
	iem := &aggregation.IncrementalEM{Config: aggregation.EMConfig{Parallelism: 1}}
	res, err := iem.Aggregate(d.Answers, validation, nil)
	if err != nil {
		b.Fatal(err)
	}
	const candidateLimit = 64
	strategy := &guidance.UncertaintyDriven{CandidateLimit: candidateLimit}
	newCtx := func(delta bool) *guidance.Context {
		return &guidance.Context{
			Answers:    d.Answers,
			ProbSet:    res.ProbSet,
			Aggregator: iem,
			DeltaScore: delta,
		}
	}

	b.Run("exact-full-em", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh context per iteration rebuilds the per-aggregation
			// index, like a serving step after a state change would.
			if _, err := strategy.Select(newCtx(false)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := strategy.Select(newCtx(true)); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The frozen variants above rebuild the index every iteration (cold
	// serving step). The variants below are new measurements, not renames:
	// they reuse one context across iterations, so the index is built once
	// and reused — the maintained-view steady state of a serving session
	// between state changes.
	b.Run("delta-maintained", func(b *testing.B) {
		ctx := newCtx(true)
		if _, err := strategy.Select(ctx); err != nil { // warm the index
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := strategy.Select(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blocked-rows", func(b *testing.B) {
		ctx := newCtx(true)
		ctx.BlockedRows = true
		if _, err := strategy.Select(ctx); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := strategy.Select(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNextObject is the headline guidance-scoring benchmark: one
// uncertainty-driven NextObject selection, exact full-EM reference vs the
// delta-accelerated scorer, on the BENCHMARKS.md crowd shapes. The delta/
// exact ns/op ratio is guarded by scripts/benchguard (-pairs next).
func BenchmarkNextObject(b *testing.B) {
	b.Run("2500x100", func(b *testing.B) { benchmarkNextObject(b, 2500, 100, 8) })
	b.Run("50000x500", func(b *testing.B) { benchmarkNextObject(b, 50000, 500, 5) })
}

func BenchmarkJacobiSVD4x4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := linalg.NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.ComputeSVD(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGuidedSessionStep(b *testing.B) {
	d := benchmarkDataset(b, 60, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		session, err := NewSession(d.Answers, WithStrategy(StrategyHybrid), WithCandidateLimit(6), WithSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		object, err := session.NextObject()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := session.SubmitValidation(object, d.Truth[object]); err != nil {
			b.Fatal(err)
		}
	}
}
